//! The dynamic-graph subsystem: a delta store layered over the frozen CSR, and snapshots.
//!
//! The paper's Graphflow is an *active* graph database, but a CSR with sorted, label-partitioned
//! adjacency lists ([`Graph`]) cannot be mutated in place without losing its fast paths. This
//! module adds writes without giving them up:
//!
//! * [`DeltaStore`] holds, per vertex and direction, **sorted insert/delete overlays partitioned
//!   by `(edge label, neighbour label)`** — mirroring the CSR [`Partition`](crate::graph) scheme
//!   — plus the inserted/deleted edge sets in SCAN order and the labels of vertices appended
//!   beyond the base CSR.
//! * [`Snapshot`] pairs an `Arc<Graph>` base with an `Arc<DeltaStore>` epoch. Cloning a snapshot
//!   is two reference-count bumps; mutating one goes through [`Arc::make_mut`], so a mutation
//!   never touches data reachable from previously handed-out clones — in-flight queries are
//!   isolated from concurrent updates by construction (copy-on-write per epoch).
//! * [`Snapshot`] implements [`GraphView`], so all executors run against it unchanged. A vertex
//!   with no pending deltas resolves to a borrowed CSR slice ([`NbrList::Borrowed`]); only
//!   vertices that were actually touched pay for a [`merge_delta`] pass.
//!
//! [`Snapshot::rebuild`] folds the deltas back into a fresh CSR (compaction); the result is
//! observationally identical to the snapshot it came from.
//!
//! # Epoch publication
//!
//! A snapshot **is** an epoch: an immutable `(base, delta, version)` triple. A concurrent
//! database (the `graphflow-core` facade) publishes writes by *swapping a snapshot value in a
//! shared slot* — readers clone the slot (two `Arc` bumps) and then run entirely lock-free,
//! while a writer stages its updates on a private clone and installs it with one store. The
//! copy-on-write mutation methods below are what make that protocol safe: a staged mutation
//! can never reach memory an already-published clone observes, so the swap is the *only*
//! point where readers transition between epochs — they see all of a staged batch or none of
//! it. [`Snapshot::same_epoch`] tests whether two snapshots observe one published epoch.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, GraphView, NbrList};
use crate::ids::{Direction, EdgeLabel, VertexId, VertexLabel};
use crate::intersect::merge_delta;
use crate::props::{EdgeKey, PropError, PropType, PropValue, PropertyStore};
use rustc_hash::FxHashMap;
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A single graph mutation, applied through [`Snapshot::apply_update`] or the batch APIs of the
/// `graphflow-core` facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Append a new vertex carrying `label`; its id is the current vertex count.
    InsertVertex { label: VertexLabel },
    /// Insert the directed edge `src -> dst` with edge label `label`. Unknown endpoints are
    /// created on demand with the default vertex label. Inserting an existing edge is a no-op.
    InsertEdge {
        src: VertexId,
        dst: VertexId,
        label: EdgeLabel,
    },
    /// Delete the directed edge `src -> dst` with edge label `label`. Deleting a missing edge
    /// is a no-op.
    DeleteEdge {
        src: VertexId,
        dst: VertexId,
        label: EdgeLabel,
    },
    /// Set the typed property `key = value` on vertex `v`. A no-op when the vertex does not
    /// exist or the value's type conflicts with the column's type.
    SetVertexProp {
        v: VertexId,
        key: String,
        value: PropValue,
    },
    /// Set the typed property `key = value` on the edge `src -> dst` carrying `label`. A no-op
    /// when the edge does not exist or the value's type conflicts with the column's type.
    SetEdgeProp {
        src: VertexId,
        dst: VertexId,
        label: EdgeLabel,
        key: String,
        value: PropValue,
    },
}

/// One `(edge label, neighbour label)` overlay of a vertex's adjacency list: the edges inserted
/// into and deleted from the matching CSR partition, each kept sorted by neighbour id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct OverlayPartition {
    edge_label: EdgeLabel,
    nbr_label: VertexLabel,
    /// Sorted neighbour ids inserted into this partition (disjoint from the CSR partition).
    inserts: Vec<VertexId>,
    /// Sorted neighbour ids deleted from this partition (a subset of the CSR partition).
    deletes: Vec<VertexId>,
}

impl OverlayPartition {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// The pending overlays of one vertex in one direction. Partitions are few (as in the CSR), so
/// a linear scan beats a map.
#[derive(Debug, Clone, Default)]
struct VertexOverlay {
    parts: Vec<OverlayPartition>,
}

impl VertexOverlay {
    fn part(&self, el: EdgeLabel, nl: VertexLabel) -> Option<&OverlayPartition> {
        self.parts
            .iter()
            .find(|p| p.edge_label == el && p.nbr_label == nl)
    }

    fn part_mut(&mut self, el: EdgeLabel, nl: VertexLabel) -> &mut OverlayPartition {
        if let Some(i) = self
            .parts
            .iter()
            .position(|p| p.edge_label == el && p.nbr_label == nl)
        {
            return &mut self.parts[i];
        }
        self.parts.push(OverlayPartition {
            edge_label: el,
            nbr_label: nl,
            inserts: Vec::new(),
            deletes: Vec::new(),
        });
        self.parts.last_mut().unwrap()
    }

    /// Drop empty partitions so the `None` fast path comes back after an insert+delete pair
    /// cancels out.
    fn prune(&mut self) {
        self.parts.retain(|p| !p.is_empty());
    }

    fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// Insert `v` into a sorted vector (no-op when already present).
fn sorted_insert(list: &mut Vec<VertexId>, v: VertexId) {
    if let Err(pos) = list.binary_search(&v) {
        list.insert(pos, v);
    }
}

/// Remove `v` from a sorted vector (no-op when absent).
fn sorted_remove(list: &mut Vec<VertexId>, v: VertexId) {
    if let Ok(pos) = list.binary_search(&v) {
        list.remove(pos);
    }
}

/// The pending mutations of one snapshot epoch, layered over a base CSR.
///
/// Invariants (maintained by [`Snapshot`]'s mutation methods, relied upon by [`merge_delta`]):
/// inserted edges are absent from the base, deleted edges are present in it, and no edge is in
/// both sets; every per-partition overlay list is strictly sorted.
#[derive(Debug, Clone, Default)]
pub struct DeltaStore {
    /// Labels of vertices appended beyond the base CSR (vertex `base_n + i` has label `[i]`).
    new_vertex_labels: Vec<VertexLabel>,
    /// Forward (out-neighbour) overlays of touched vertices.
    fwd: FxHashMap<VertexId, VertexOverlay>,
    /// Backward (in-neighbour) overlays of touched vertices.
    bwd: FxHashMap<VertexId, VertexOverlay>,
    /// Inserted edges in SCAN order `(label, src, dst)`.
    inserted_edges: BTreeSet<(EdgeLabel, VertexId, VertexId)>,
    /// Deleted edges in SCAN order `(label, src, dst)`.
    deleted_edges: BTreeSet<(EdgeLabel, VertexId, VertexId)>,
    /// Largest vertex label carried by a new vertex (0 when none). Monotone is correct here:
    /// vertices are never removed, so the maximum can only grow.
    max_vertex_label: u16,
    /// Pending vertex-property writes: per column, its type and the overridden slots.
    vertex_props: FxHashMap<String, (PropType, FxHashMap<VertexId, PropValue>)>,
    /// Pending edge-property writes: `Some(value)` overrides, `None` tombstones a base value
    /// (set when the carrying edge is deleted).
    edge_props: FxHashMap<String, (PropType, FxHashMap<EdgeKey, Option<PropValue>>)>,
}

impl DeltaStore {
    /// Whether nothing is pending (the snapshot is observationally the base CSR).
    pub fn is_empty(&self) -> bool {
        self.new_vertex_labels.is_empty()
            && self.inserted_edges.is_empty()
            && self.deleted_edges.is_empty()
            && self.vertex_props.is_empty()
            && self.edge_props.is_empty()
    }

    /// Number of pending property writes (vertex and edge overrides plus tombstones).
    pub fn num_prop_overrides(&self) -> usize {
        self.vertex_props
            .values()
            .map(|(_, m)| m.len())
            .sum::<usize>()
            + self
                .edge_props
                .values()
                .map(|(_, m)| m.len())
                .sum::<usize>()
    }

    /// Number of pending edge insertions.
    pub fn num_inserted_edges(&self) -> usize {
        self.inserted_edges.len()
    }

    /// Number of pending edge deletions.
    pub fn num_deleted_edges(&self) -> usize {
        self.deleted_edges.len()
    }

    /// Number of vertices appended beyond the base CSR.
    pub fn num_new_vertices(&self) -> usize {
        self.new_vertex_labels.len()
    }

    /// Total overlay entries (inserted + deleted edges) — the compaction-pressure measure.
    pub fn overlay_edges(&self) -> usize {
        self.inserted_edges.len() + self.deleted_edges.len()
    }

    /// Largest edge label carried by a *currently pending* insert. Derived from the sorted
    /// insert set (its last element) rather than a running maximum, so cancelling the only
    /// insert with a high label does not leave the label space over-reported.
    fn max_inserted_edge_label(&self) -> Option<u16> {
        self.inserted_edges.iter().next_back().map(|&(l, _, _)| l.0)
    }

    /// Approximate in-memory size of the overlay structures, in bytes.
    pub fn memory_bytes(&self) -> usize {
        let overlay = |m: &FxHashMap<VertexId, VertexOverlay>| -> usize {
            m.values()
                .map(|o| {
                    o.parts.len() * std::mem::size_of::<OverlayPartition>()
                        + o.parts
                            .iter()
                            .map(|p| (p.inserts.len() + p.deletes.len()) * 4)
                            .sum::<usize>()
                        + 16
                })
                .sum()
        };
        let props = self
            .vertex_props
            .values()
            .map(|(_, m)| m.len() * (4 + std::mem::size_of::<PropValue>()))
            .sum::<usize>()
            + self
                .edge_props
                .values()
                .map(|(_, m)| {
                    m.len()
                        * (std::mem::size_of::<EdgeKey>()
                            + std::mem::size_of::<Option<PropValue>>())
                })
                .sum::<usize>();
        overlay(&self.fwd)
            + overlay(&self.bwd)
            + (self.inserted_edges.len() + self.deleted_edges.len()) * 12
            + self.new_vertex_labels.len() * 2
            + props
    }

    fn adj(&self, dir: Direction) -> &FxHashMap<VertexId, VertexOverlay> {
        match dir {
            Direction::Fwd => &self.fwd,
            Direction::Bwd => &self.bwd,
        }
    }

    fn adj_mut(&mut self, dir: Direction) -> &mut FxHashMap<VertexId, VertexOverlay> {
        match dir {
            Direction::Fwd => &mut self.fwd,
            Direction::Bwd => &mut self.bwd,
        }
    }

    /// Whether any pending insert or delete carries edge label `el`.
    fn touches_label(&self, el: EdgeLabel) -> bool {
        let range = (el, 0, 0)..=(el, VertexId::MAX, VertexId::MAX);
        self.inserted_edges.range(range.clone()).next().is_some()
            || self.deleted_edges.range(range).next().is_some()
    }

    /// Mutate the `(dir, v, el, nl)` overlay partition, then drop it if it cancelled to empty.
    fn with_part(
        &mut self,
        dir: Direction,
        v: VertexId,
        el: EdgeLabel,
        nl: VertexLabel,
        f: impl FnOnce(&mut OverlayPartition),
    ) {
        let map = self.adj_mut(dir);
        let overlay = map.entry(v).or_default();
        f(overlay.part_mut(el, nl));
        overlay.prune();
        if overlay.is_empty() {
            map.remove(&v);
        }
    }
}

/// An immutable view of the graph at one moment: a base CSR plus a frozen delta epoch.
///
/// Cheap to clone (`Arc` bumps) and safe to hold across mutations of the database it came from:
/// mutation goes through copy-on-write, so a clone taken before an update keeps observing the
/// pre-update graph. Implements [`GraphView`], so every executor runs against it directly.
#[derive(Debug, Clone)]
pub struct Snapshot {
    base: Arc<Graph>,
    delta: Arc<DeltaStore>,
    version: u64,
}

impl From<Graph> for Snapshot {
    fn from(g: Graph) -> Self {
        Snapshot::new(Arc::new(g))
    }
}

impl From<Arc<Graph>> for Snapshot {
    fn from(g: Arc<Graph>) -> Self {
        Snapshot::new(g)
    }
}

impl Snapshot {
    /// A snapshot of a frozen graph with no pending deltas, at version 0.
    pub fn new(base: Arc<Graph>) -> Self {
        Snapshot {
            base,
            delta: Arc::new(DeltaStore::default()),
            version: 0,
        }
    }

    /// The base CSR (excluding pending deltas).
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// The pending-delta store of this epoch.
    pub fn delta(&self) -> &DeltaStore {
        &self.delta
    }

    /// The version of this snapshot: the number of applied mutations since the base graph was
    /// first wrapped. Compaction preserves the version (the logical graph does not change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether any mutation is pending on top of the base CSR.
    pub fn has_pending_deltas(&self) -> bool {
        !self.delta.is_empty()
    }

    /// Overwrite the version counter without touching the graph. Crash recovery uses this to
    /// republish a reloaded graph at the epoch its snapshot/WAL recorded, so version numbers
    /// stay monotone across a restart. Not for general use: versions normally advance only
    /// through mutations.
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Whether `other` observes the exact same published epoch: identical version *and* the
    /// same shared base/delta allocations — an O(1) pointer check, no content comparison.
    ///
    /// Conservative across compaction: compacting rebuilds the base allocation without
    /// changing the logical graph, so a pre-compaction clone reports `false` against a
    /// post-compaction one even though their contents agree.
    pub fn same_epoch(&self, other: &Snapshot) -> bool {
        self.version == other.version
            && Arc::ptr_eq(&self.base, &other.base)
            && Arc::ptr_eq(&self.delta, &other.delta)
    }

    /// Approximate in-memory size of base CSR + delta overlays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.base.memory_bytes() + self.delta.memory_bytes()
    }

    // --- mutations (copy-on-write against older clones) ------------------------------------

    /// Append a new vertex carrying `label`, returning its id.
    pub fn insert_vertex(&mut self, label: VertexLabel) -> VertexId {
        let v = self.num_vertices() as VertexId;
        let delta = Arc::make_mut(&mut self.delta);
        delta.new_vertex_labels.push(label);
        delta.max_vertex_label = delta.max_vertex_label.max(label.0);
        self.version += 1;
        v
    }

    /// Ensure vertex `v` exists, appending default-labelled vertices as needed. Returns the
    /// number of vertices created.
    pub fn ensure_vertex(&mut self, v: VertexId) -> usize {
        let have = self.num_vertices();
        let need = v as usize + 1;
        if need <= have {
            return 0;
        }
        let delta = Arc::make_mut(&mut self.delta);
        delta
            .new_vertex_labels
            .resize(need - self.base.num_vertices(), VertexLabel(0));
        self.version += 1;
        need - have
    }

    /// Insert the directed edge `src -> dst` with label `el`. Both endpoints must exist (use
    /// [`ensure_vertex`](Snapshot::ensure_vertex) or [`insert_vertex`](Snapshot::insert_vertex)
    /// first). Returns `false` (and changes nothing) when the edge already exists.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, el: EdgeLabel) -> bool {
        let n = self.num_vertices();
        assert!(
            (src as usize) < n && (dst as usize) < n,
            "insert_edge: vertex out of bounds ({src} or {dst} >= {n})"
        );
        if GraphView::has_edge(self, src, dst, el) {
            return false;
        }
        let sl = self.vertex_label(src);
        let dl = self.vertex_label(dst);
        let key = (el, src, dst);
        let delta = Arc::make_mut(&mut self.delta);
        if delta.deleted_edges.remove(&key) {
            // Re-inserting a deleted base edge: cancel the delete.
            delta.with_part(Direction::Fwd, src, el, dl, |p| {
                sorted_remove(&mut p.deletes, dst)
            });
            delta.with_part(Direction::Bwd, dst, el, sl, |p| {
                sorted_remove(&mut p.deletes, src)
            });
        } else {
            delta.inserted_edges.insert(key);
            delta.with_part(Direction::Fwd, src, el, dl, |p| {
                sorted_insert(&mut p.inserts, dst)
            });
            delta.with_part(Direction::Bwd, dst, el, sl, |p| {
                sorted_insert(&mut p.inserts, src)
            });
        }
        self.version += 1;
        true
    }

    /// Delete the directed edge `src -> dst` with label `el`. Returns `false` (and changes
    /// nothing) when no such edge exists.
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId, el: EdgeLabel) -> bool {
        if !GraphView::has_edge(self, src, dst, el) {
            return false;
        }
        let sl = self.vertex_label(src);
        let dl = self.vertex_label(dst);
        let key = (el, src, dst);
        let delta = Arc::make_mut(&mut self.delta);
        if delta.inserted_edges.remove(&key) {
            // Deleting a pending insert: cancel it.
            delta.with_part(Direction::Fwd, src, el, dl, |p| {
                sorted_remove(&mut p.inserts, dst)
            });
            delta.with_part(Direction::Bwd, dst, el, sl, |p| {
                sorted_remove(&mut p.inserts, src)
            });
        } else {
            delta.deleted_edges.insert(key);
            delta.with_part(Direction::Fwd, src, el, dl, |p| {
                sorted_insert(&mut p.deletes, dst)
            });
            delta.with_part(Direction::Bwd, dst, el, sl, |p| {
                sorted_insert(&mut p.deletes, src)
            });
        }
        // Properties die with their edge: drop pending overrides and tombstone base values so
        // neither a later re-insert nor compaction resurrects them.
        let edge: EdgeKey = (src, dst, el);
        delta.edge_props.retain(|_, (_, overrides)| {
            overrides.remove(&edge);
            !overrides.is_empty()
        });
        for key in self.base.properties().edge_keys_of(edge) {
            let ty = self
                .base
                .properties()
                .edge_col_type(&key)
                .expect("column exists");
            delta
                .edge_props
                .entry(key)
                .or_insert_with(|| (ty, FxHashMap::default()))
                .1
                .insert(edge, None);
        }
        self.version += 1;
        true
    }

    /// Set the typed property `key = value` on vertex `v`. The column's type is fixed by its
    /// first value (base store or overlay); conflicting writes are rejected.
    pub fn set_vertex_prop(
        &mut self,
        v: VertexId,
        key: &str,
        value: PropValue,
    ) -> Result<(), PropError> {
        if (v as usize) >= self.num_vertices() {
            return Err(PropError::NoSuchVertex { v });
        }
        let expected = self
            .base
            .properties()
            .vertex_col_type(key)
            .or_else(|| self.delta.vertex_props.get(key).map(|(ty, _)| *ty));
        if let Some(ty) = expected {
            if value.prop_type() != ty {
                return Err(PropError::TypeMismatch {
                    key: key.to_string(),
                    expected: ty,
                    found: value.prop_type(),
                });
            }
        }
        let ty = value.prop_type();
        let delta = Arc::make_mut(&mut self.delta);
        delta
            .vertex_props
            .entry(key.to_string())
            .or_insert_with(|| (ty, FxHashMap::default()))
            .1
            .insert(v, value);
        self.version += 1;
        Ok(())
    }

    /// Set the typed property `key = value` on the (existing) edge `src -> dst` carrying `el`.
    pub fn set_edge_prop(
        &mut self,
        src: VertexId,
        dst: VertexId,
        el: EdgeLabel,
        key: &str,
        value: PropValue,
    ) -> Result<(), PropError> {
        if !GraphView::has_edge(self, src, dst, el) {
            return Err(PropError::NoSuchEdge {
                src,
                dst,
                label: el,
            });
        }
        let expected = self
            .base
            .properties()
            .edge_col_type(key)
            .or_else(|| self.delta.edge_props.get(key).map(|(ty, _)| *ty));
        if let Some(ty) = expected {
            if value.prop_type() != ty {
                return Err(PropError::TypeMismatch {
                    key: key.to_string(),
                    expected: ty,
                    found: value.prop_type(),
                });
            }
        }
        let ty = value.prop_type();
        let delta = Arc::make_mut(&mut self.delta);
        delta
            .edge_props
            .entry(key.to_string())
            .or_insert_with(|| (ty, FxHashMap::default()))
            .1
            .insert((src, dst, el), Some(value));
        self.version += 1;
        Ok(())
    }

    /// Apply one [`Update`]. Returns whether it changed the graph (vertex insertions always do;
    /// edge operations are no-ops when the edge already exists / is already gone). Edge updates
    /// create unknown endpoints on demand with the default vertex label.
    pub fn apply_update(&mut self, update: &Update) -> bool {
        match update {
            Update::InsertVertex { label } => {
                self.insert_vertex(*label);
                true
            }
            Update::InsertEdge { src, dst, label } => {
                self.ensure_vertex(*src.max(dst));
                self.insert_edge(*src, *dst, *label)
            }
            Update::DeleteEdge { src, dst, label } => self.delete_edge(*src, *dst, *label),
            Update::SetVertexProp { v, key, value } => {
                self.set_vertex_prop(*v, key, value.clone()).is_ok()
            }
            Update::SetEdgeProp {
                src,
                dst,
                label,
                key,
                value,
            } => self
                .set_edge_prop(*src, *dst, *label, key, value.clone())
                .is_ok(),
        }
    }

    // --- compaction -------------------------------------------------------------------------

    /// Fold the pending deltas into a fresh CSR. The returned graph is observationally
    /// identical to this snapshot (same vertices, labels and edges) with empty deltas;
    /// `Snapshot::from(rebuilt)` restarts at version 0, so callers that track versions (the
    /// `graphflow-core` facade) carry the version over themselves.
    pub fn rebuild(&self) -> Graph {
        let mut builder = GraphBuilder::from_view(self);
        builder.set_props(self.merged_props());
        let mut g = builder.build();
        // The builder derives label counts from the surviving content; preserve this
        // snapshot's declared label-space widths (e.g. a base label whose last edge was
        // deleted) so compaction is observationally neutral for them too.
        g.num_vertex_labels = g.num_vertex_labels.max(GraphView::num_vertex_labels(self));
        g.num_edge_labels = g.num_edge_labels.max(GraphView::num_edge_labels(self));
        g.edge_label_ranges
            .resize(g.num_edge_labels as usize, (0, 0));
        g
    }

    /// The base property store with every pending override and tombstone folded in (what
    /// compaction installs as the new base store).
    fn merged_props(&self) -> PropertyStore {
        let mut props = self.base.properties().clone();
        for (key, (_, overrides)) in &self.delta.vertex_props {
            for (&v, value) in overrides {
                props
                    .set_vertex(v, key, value.clone())
                    .expect("overlay writes were type-checked");
            }
        }
        for (key, (_, overrides)) in &self.delta.edge_props {
            for (&edge, value) in overrides {
                match value {
                    Some(value) => props
                        .set_edge(edge, key, value.clone())
                        .expect("overlay writes were type-checked"),
                    None => props.remove_edge_value(edge, key),
                }
            }
        }
        props
    }

    /// Replace the base CSR with the compacted graph, dropping all deltas while keeping the
    /// version number (the logical graph is unchanged). No-op when nothing is pending.
    pub fn compact(&mut self) {
        if !self.has_pending_deltas() {
            return;
        }
        self.base = Arc::new(self.rebuild());
        self.delta = Arc::new(DeltaStore::default());
    }
}

impl GraphView for Snapshot {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.base.num_vertices() + self.delta.new_vertex_labels.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.base.num_edges() + self.delta.inserted_edges.len() - self.delta.deleted_edges.len()
    }

    #[inline]
    fn num_vertex_labels(&self) -> u16 {
        self.base
            .num_vertex_labels()
            .max(self.delta.max_vertex_label + 1)
    }

    #[inline]
    fn num_edge_labels(&self) -> u16 {
        self.base
            .num_edge_labels()
            .max(self.delta.max_inserted_edge_label().map_or(0, |l| l + 1))
    }

    #[inline]
    fn vertex_label(&self, v: VertexId) -> VertexLabel {
        let nb = self.base.num_vertices();
        if (v as usize) < nb {
            self.base.vertex_label(v)
        } else {
            self.delta.new_vertex_labels[v as usize - nb]
        }
    }

    fn nbrs(&self, v: VertexId, dir: Direction, el: EdgeLabel, nl: VertexLabel) -> NbrList<'_> {
        let base_list: &[VertexId] = if (v as usize) < self.base.num_vertices() {
            self.base.adj(dir).list(v, el, nl)
        } else {
            &[]
        };
        if self.delta.is_empty() {
            return NbrList::Borrowed(base_list);
        }
        let Some(overlay) = self.delta.adj(dir).get(&v) else {
            return NbrList::Borrowed(base_list);
        };
        match overlay.part(el, nl) {
            None => NbrList::Borrowed(base_list),
            Some(p) => {
                let mut out = Vec::new();
                merge_delta(base_list, &p.inserts, &p.deletes, &mut out);
                NbrList::Merged(out)
            }
        }
    }

    fn degree(&self, v: VertexId, dir: Direction, el: EdgeLabel, nl: VertexLabel) -> usize {
        let base = if (v as usize) < self.base.num_vertices() {
            self.base.adj(dir).degree(v, el, nl)
        } else {
            0
        };
        match self.delta.adj(dir).get(&v).and_then(|o| o.part(el, nl)) {
            Some(p) => base + p.inserts.len() - p.deletes.len(),
            None => base,
        }
    }

    fn has_edge(&self, u: VertexId, v: VertexId, el: EdgeLabel) -> bool {
        let n = self.num_vertices();
        if u as usize >= n || v as usize >= n {
            return false;
        }
        if !self.delta.is_empty() {
            let key = (el, u, v);
            if self.delta.inserted_edges.contains(&key) {
                return true;
            }
            if self.delta.deleted_edges.contains(&key) {
                return false;
            }
        }
        // `Graph::has_edge` bounds-checks against the base vertex count itself.
        self.base.has_edge(u, v, el)
    }

    fn scan_edges(&self, el: EdgeLabel) -> Cow<'_, [(VertexId, VertexId, EdgeLabel)]> {
        let base = self.base.edges_with_label(el);
        if !self.delta.touches_label(el) {
            return Cow::Borrowed(base);
        }
        let range = (el, 0, 0)..=(el, VertexId::MAX, VertexId::MAX);
        let mut inserts = self.delta.inserted_edges.range(range.clone()).peekable();
        let mut deletes = self.delta.deleted_edges.range(range).peekable();
        let mut out = Vec::with_capacity(base.len() + self.delta.inserted_edges.len());
        // Base edges with one label are sorted by (src, dst), as are the BTreeSet ranges, so a
        // single merge pass produces the merged SCAN input in order.
        for &(s, d, l) in base {
            if deletes.peek() == Some(&&(el, s, d)) {
                deletes.next();
                continue;
            }
            while let Some(&&(_, is, id)) = inserts.peek() {
                if (is, id) < (s, d) {
                    out.push((is, id, el));
                    inserts.next();
                } else {
                    break;
                }
            }
            out.push((s, d, l));
        }
        out.extend(inserts.map(|&(_, s, d)| (s, d, el)));
        Cow::Owned(out)
    }

    fn vertex_prop(&self, v: VertexId, key: &str) -> Option<PropValue> {
        if let Some((_, overrides)) = self.delta.vertex_props.get(key) {
            if let Some(value) = overrides.get(&v) {
                return Some(value.clone());
            }
        }
        if (v as usize) < self.base.num_vertices() {
            self.base.vertex_prop(v, key)
        } else {
            None
        }
    }

    fn edge_prop(
        &self,
        src: VertexId,
        dst: VertexId,
        el: EdgeLabel,
        key: &str,
    ) -> Option<PropValue> {
        if let Some((_, overrides)) = self.delta.edge_props.get(key) {
            match overrides.get(&(src, dst, el)) {
                Some(Some(value)) => return Some(value.clone()),
                Some(None) => return None, // tombstoned
                None => {}
            }
        }
        self.base.edge_prop(src, dst, el, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_triangle() -> Snapshot {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        Snapshot::from(b.build())
    }

    fn nbr_vec(s: &Snapshot, v: VertexId, dir: Direction) -> Vec<VertexId> {
        s.nbrs(v, dir, EdgeLabel(0), VertexLabel(0)).to_vec()
    }

    #[test]
    fn clean_snapshot_is_transparent() {
        let s = base_triangle();
        assert!(!s.has_pending_deltas());
        assert_eq!(GraphView::num_vertices(&s), 3);
        assert_eq!(GraphView::num_edges(&s), 3);
        assert!(!s
            .nbrs(0, Direction::Fwd, EdgeLabel(0), VertexLabel(0))
            .is_merged());
        assert_eq!(nbr_vec(&s, 0, Direction::Fwd), vec![1, 2]);
        assert!(matches!(s.scan_edges(EdgeLabel(0)), Cow::Borrowed(_)));
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn insert_and_delete_edges_merge_into_lists() {
        let mut s = base_triangle();
        assert!(s.insert_edge(2, 0, EdgeLabel(0)));
        assert!(
            !s.insert_edge(2, 0, EdgeLabel(0)),
            "duplicate insert is a no-op"
        );
        assert!(s.delete_edge(0, 1, EdgeLabel(0)));
        assert!(
            !s.delete_edge(0, 1, EdgeLabel(0)),
            "double delete is a no-op"
        );
        assert_eq!(s.version(), 2);
        assert_eq!(GraphView::num_edges(&s), 3);
        assert_eq!(nbr_vec(&s, 0, Direction::Fwd), vec![2]);
        assert_eq!(nbr_vec(&s, 2, Direction::Fwd), vec![0]);
        assert_eq!(nbr_vec(&s, 0, Direction::Bwd), vec![2]);
        assert!(GraphView::has_edge(&s, 2, 0, EdgeLabel(0)));
        assert!(!GraphView::has_edge(&s, 0, 1, EdgeLabel(0)));
        assert_eq!(s.degree(0, Direction::Fwd, EdgeLabel(0), VertexLabel(0)), 1);
        let scan: Vec<_> = s.scan_edges(EdgeLabel(0)).to_vec();
        assert_eq!(
            scan,
            vec![
                (0, 2, EdgeLabel(0)),
                (1, 2, EdgeLabel(0)),
                (2, 0, EdgeLabel(0))
            ]
        );
    }

    #[test]
    fn cancelling_updates_restores_fast_path() {
        let mut s = base_triangle();
        assert!(s.insert_edge(2, 0, EdgeLabel(0)));
        assert!(
            s.delete_edge(2, 0, EdgeLabel(0)),
            "deleting a pending insert"
        );
        assert!(s.delete_edge(0, 1, EdgeLabel(0)));
        assert!(
            s.insert_edge(0, 1, EdgeLabel(0)),
            "re-inserting a deleted base edge"
        );
        assert!(!s.has_pending_deltas(), "all updates cancelled out");
        assert!(!s
            .nbrs(0, Direction::Fwd, EdgeLabel(0), VertexLabel(0))
            .is_merged());
        assert_eq!(nbr_vec(&s, 0, Direction::Fwd), vec![1, 2]);
        assert_eq!(s.version(), 4, "versions advance even when updates cancel");
    }

    #[test]
    fn new_vertices_and_labels() {
        let mut s = base_triangle();
        let v = s.insert_vertex(VertexLabel(3));
        assert_eq!(v, 3);
        assert_eq!(s.vertex_label(3), VertexLabel(3));
        assert_eq!(GraphView::num_vertex_labels(&s), 4);
        assert!(s.insert_edge(0, v, EdgeLabel(2)));
        assert_eq!(GraphView::num_edge_labels(&s), 3);
        assert_eq!(
            s.nbrs(0, Direction::Fwd, EdgeLabel(2), VertexLabel(3))
                .to_vec(),
            vec![3]
        );
        assert_eq!(
            s.nbrs(v, Direction::Bwd, EdgeLabel(2), VertexLabel(0))
                .to_vec(),
            vec![0]
        );
        assert_eq!(s.ensure_vertex(5), 2);
        assert_eq!(GraphView::num_vertices(&s), 6);
        assert_eq!(s.vertex_label(5), VertexLabel(0));
    }

    #[test]
    fn self_loops_are_supported() {
        let mut s = base_triangle();
        assert!(s.insert_edge(1, 1, EdgeLabel(0)));
        assert!(GraphView::has_edge(&s, 1, 1, EdgeLabel(0)));
        assert_eq!(nbr_vec(&s, 1, Direction::Fwd), vec![1, 2]);
        assert_eq!(nbr_vec(&s, 1, Direction::Bwd), vec![0, 1]);
        assert!(s.delete_edge(1, 1, EdgeLabel(0)));
        assert!(!s.has_pending_deltas());
    }

    #[test]
    fn same_epoch_tracks_publication_not_content() {
        let mut s = base_triangle();
        let clone = s.clone();
        assert!(s.same_epoch(&clone), "clones share one epoch");
        s.insert_edge(2, 0, EdgeLabel(0));
        assert!(!s.same_epoch(&clone), "mutation departs from the old epoch");
        // Cancelling the update restores the *content* but not the epoch identity.
        s.delete_edge(2, 0, EdgeLabel(0));
        assert!(!s.same_epoch(&clone));
        // Compaction is conservative: logically neutral, but a different allocation.
        let mut t = base_triangle();
        t.insert_edge(2, 0, EdgeLabel(0));
        let before = t.clone();
        t.compact();
        assert!(!t.same_epoch(&before));
        assert_eq!(t.version(), before.version());
    }

    #[test]
    fn clones_are_isolated_from_later_mutations() {
        let mut s = base_triangle();
        s.insert_edge(2, 0, EdgeLabel(0));
        let frozen = s.clone();
        s.delete_edge(2, 0, EdgeLabel(0));
        s.delete_edge(1, 2, EdgeLabel(0));
        assert!(GraphView::has_edge(&frozen, 2, 0, EdgeLabel(0)));
        assert!(GraphView::has_edge(&frozen, 1, 2, EdgeLabel(0)));
        assert_eq!(GraphView::num_edges(&frozen), 4);
        assert_eq!(GraphView::num_edges(&s), 2);
        assert_eq!(frozen.version(), 1);
        assert_eq!(s.version(), 3);
    }

    #[test]
    fn rebuild_round_trips() {
        let mut s = base_triangle();
        s.insert_vertex(VertexLabel(1));
        s.insert_edge(3, 0, EdgeLabel(1));
        s.insert_edge(2, 2, EdgeLabel(0)); // self-loop
        s.delete_edge(0, 2, EdgeLabel(0));
        let rebuilt = s.rebuild();
        rebuilt.check_invariants().unwrap();
        assert_eq!(rebuilt.num_vertices(), GraphView::num_vertices(&s));
        assert_eq!(rebuilt.num_edges(), GraphView::num_edges(&s));
        for el in 0..GraphView::num_edge_labels(&s) {
            assert_eq!(
                rebuilt.edges_with_label(EdgeLabel(el)),
                &s.scan_edges(EdgeLabel(el))[..],
                "label {el}"
            );
        }
        // In-place compaction is observationally neutral.
        let before: Vec<_> = s.scan_edges(EdgeLabel(0)).to_vec();
        let version = s.version();
        s.compact();
        assert!(!s.has_pending_deltas());
        assert_eq!(s.version(), version);
        assert_eq!(s.scan_edges(EdgeLabel(0)).to_vec(), before);
    }

    #[test]
    fn cancelled_label_inserts_do_not_leak_label_space() {
        let mut s = base_triangle();
        assert!(s.insert_edge(2, 0, EdgeLabel(9)));
        assert_eq!(GraphView::num_edge_labels(&s), 10);
        assert!(
            s.delete_edge(2, 0, EdgeLabel(9)),
            "cancel the pending insert"
        );
        assert_eq!(
            GraphView::num_edge_labels(&s),
            1,
            "cancelled insert must not widen the label space"
        );
        // And compaction agrees with the live snapshot either way.
        assert!(s.insert_edge(2, 0, EdgeLabel(4)));
        let declared = GraphView::num_edge_labels(&s);
        let rebuilt = s.rebuild();
        assert_eq!(rebuilt.num_edge_labels(), declared);
        // Deleting the last edge of a base label keeps the declared width across compaction.
        let mut t = base_triangle();
        t.insert_edge(2, 0, EdgeLabel(3));
        t.compact();
        t.delete_edge(2, 0, EdgeLabel(3));
        assert_eq!(GraphView::num_edge_labels(&t), 4);
        let rebuilt = t.rebuild();
        assert_eq!(rebuilt.num_edge_labels(), 4);
        assert!(rebuilt.edges_with_label(EdgeLabel(3)).is_empty());
    }

    #[test]
    fn props_overlay_isolated_and_compacted() {
        let mut s = base_triangle();
        s.set_vertex_prop(0, "age", PropValue::Int(30)).unwrap();
        s.set_edge_prop(0, 1, EdgeLabel(0), "w", PropValue::Float(0.5))
            .unwrap();
        assert_eq!(s.vertex_prop(0, "age"), Some(PropValue::Int(30)));
        assert_eq!(
            s.edge_prop(0, 1, EdgeLabel(0), "w"),
            Some(PropValue::Float(0.5))
        );
        assert!(s.has_pending_deltas());

        // Clones are isolated from later property writes.
        let frozen = s.clone();
        s.set_vertex_prop(0, "age", PropValue::Int(99)).unwrap();
        assert_eq!(frozen.vertex_prop(0, "age"), Some(PropValue::Int(30)));
        assert_eq!(s.vertex_prop(0, "age"), Some(PropValue::Int(99)));

        // Type mismatches and missing endpoints are rejected.
        assert!(matches!(
            s.set_vertex_prop(1, "age", PropValue::str("old")),
            Err(PropError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.set_vertex_prop(77, "age", PropValue::Int(1)),
            Err(PropError::NoSuchVertex { .. })
        ));
        assert!(matches!(
            s.set_edge_prop(2, 0, EdgeLabel(0), "w", PropValue::Float(1.0)),
            Err(PropError::NoSuchEdge { .. })
        ));

        // Compaction folds the overlay into the base store without changing reads.
        s.compact();
        assert!(!s.has_pending_deltas());
        assert_eq!(s.vertex_prop(0, "age"), Some(PropValue::Int(99)));
        assert_eq!(
            s.edge_prop(0, 1, EdgeLabel(0), "w"),
            Some(PropValue::Float(0.5))
        );
        // After compaction the base column enforces the established type.
        assert!(s.set_vertex_prop(2, "age", PropValue::Bool(true)).is_err());
    }

    #[test]
    fn deleting_an_edge_drops_its_props() {
        let mut s = base_triangle();
        s.set_edge_prop(0, 1, EdgeLabel(0), "w", PropValue::Int(7))
            .unwrap();
        s.compact(); // props now live in the base store
        assert!(s.delete_edge(0, 1, EdgeLabel(0)));
        assert_eq!(s.edge_prop(0, 1, EdgeLabel(0), "w"), None, "tombstoned");
        // Re-inserting the edge does not resurrect the old value, and compaction agrees.
        assert!(s.insert_edge(0, 1, EdgeLabel(0)));
        assert_eq!(s.edge_prop(0, 1, EdgeLabel(0), "w"), None);
        let rebuilt = Snapshot::from(s.rebuild());
        assert_eq!(rebuilt.edge_prop(0, 1, EdgeLabel(0), "w"), None);
        // New vertices can carry properties through the overlay.
        let v = s.insert_vertex(VertexLabel(1));
        s.set_vertex_prop(v, "name", PropValue::str("new")).unwrap();
        assert_eq!(s.vertex_prop(v, "name"), Some(PropValue::str("new")));
        let rebuilt = s.rebuild();
        assert_eq!(rebuilt.vertex_prop(v, "name"), Some(PropValue::str("new")));
    }

    #[test]
    fn memory_bytes_grows_with_deltas() {
        let mut s = base_triangle();
        let clean = s.memory_bytes();
        s.insert_edge(2, 0, EdgeLabel(0));
        assert!(s.memory_bytes() > clean);
    }
}
