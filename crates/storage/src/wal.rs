//! The append-only write-ahead log.
//!
//! One file per database directory (`wal.log`), holding a sequence of frames:
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [epoch: u64 LE][update count: u32 LE][Update]*
//! ```
//!
//! `epoch` is the snapshot version the batch produced (the value `WriteTxn::commit` returns),
//! so recovery can replay the log to exactly the published epoch sequence and skip records
//! already folded into a snapshot.
//!
//! **Torn-tail tolerance.** A crash mid-append leaves a partial frame at the end of the file.
//! [`replay`] validates every frame (length bound, checksum, payload decode, epoch
//! monotonicity) and stops at the first bad one; [`Wal::open`] then truncates the file to the
//! last valid frame boundary, so the next append never interleaves with garbage.

use crate::crc::crc32;
use crate::{Durability, StorageError};
use graphflow_graph::serialize::{put_u32, put_u64, put_update, read_update, Cursor};
use graphflow_graph::Update;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the write-ahead log inside a database directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// The WAL path inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE_NAME)
}

/// One logged commit: the epoch it published and the effective updates of the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    pub epoch: u64,
    pub updates: Vec<Update>,
}

/// What [`replay`] found in a WAL image.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every fully-valid batch, in log order (epochs strictly increasing).
    pub batches: Vec<WalBatch>,
    /// Byte length of the valid prefix; everything past it is a torn tail.
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was found (and will be truncated on open).
    pub truncated_tail: bool,
}

/// Decode a WAL image, stopping at the first invalid frame.
///
/// Never panics and never allocates more than the input size: frame lengths are validated
/// against the remaining bytes before any payload is touched.
pub fn replay(bytes: &[u8]) -> WalRecovery {
    let mut batches: Vec<WalBatch> = Vec::new();
    let mut pos = 0usize;
    let mut last_epoch = 0u64;
    'frames: while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if bytes.len() - pos - 8 < len {
            break; // frame extends past EOF: torn tail
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // checksum mismatch: corrupt or torn frame
        }
        let mut cur = Cursor::new(payload);
        let (Ok(epoch), Ok(count)) = (cur.read_u64(), cur.read_u32()) else {
            break;
        };
        // Epochs must advance; a regression means the log was damaged in a way the per-frame
        // checksum cannot see (e.g. frames spliced from another file).
        if !batches.is_empty() && epoch <= last_epoch {
            break;
        }
        let mut updates = Vec::with_capacity((count as usize).min(payload.len()));
        for _ in 0..count {
            match read_update(&mut cur) {
                Ok(u) => updates.push(u),
                Err(_) => break 'frames,
            }
        }
        if !cur.is_empty() {
            break; // trailing bytes inside a frame: malformed
        }
        last_epoch = epoch;
        batches.push(WalBatch { epoch, updates });
        pos += 8 + len;
    }
    WalRecovery {
        batches,
        valid_len: pos as u64,
        truncated_tail: pos < bytes.len(),
    }
}

/// Plain cumulative counters of what an open [`Wal`] has done, polled by the facade's metrics
/// registry. Counters reset when the log is reopened (they describe this process's work, not
/// the file's history).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Commit frames appended (staged frames under [`Durability::None`] included).
    pub appends: u64,
    /// Frame bytes (header + payload) that entered the log.
    pub bytes_written: u64,
    /// `fdatasync` calls issued (per-commit under [`Durability::Fsync`], plus explicit
    /// [`Wal::sync`] barriers and checkpoint truncations).
    pub fsyncs: u64,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    durability: Durability,
    /// Frames staged under [`Durability::None`] (flushed by sync/truncate/drop).
    pending: Vec<u8>,
    /// Reused frame-encoding scratch buffer.
    scratch: Vec<u8>,
    stats: WalStats,
}

impl Wal {
    /// Open (or create) the WAL in `dir`, replay its valid prefix, truncate any torn tail,
    /// and position the file for appending.
    pub fn open(dir: &Path, durability: Durability) -> Result<(Wal, WalRecovery), StorageError> {
        let path = wal_path(dir);
        let ctx = |op: &str| format!("{op} WAL {}", path.display());
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StorageError::io(ctx("reading"), e)),
        };
        let recovery = replay(&bytes);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StorageError::io(ctx("opening"), e))?;
        if recovery.truncated_tail {
            file.set_len(recovery.valid_len)
                .map_err(|e| StorageError::io(ctx("truncating torn tail of"), e))?;
        }
        file.seek(SeekFrom::Start(recovery.valid_len))
            .map_err(|e| StorageError::io(ctx("seeking"), e))?;
        Ok((
            Wal {
                file,
                path,
                durability,
                pending: Vec::new(),
                scratch: Vec::new(),
                stats: WalStats::default(),
            },
            recovery,
        ))
    }

    /// Append one commit frame. Under [`Durability::Fsync`] the frame is durable when this
    /// returns; under [`Durability::Buffered`] it reached the OS; under [`Durability::None`]
    /// it is only staged in memory.
    pub fn append(&mut self, epoch: u64, updates: &[Update]) -> Result<(), StorageError> {
        let payload = &mut self.scratch;
        payload.clear();
        put_u64(payload, epoch);
        put_u32(payload, updates.len() as u32);
        for u in updates {
            put_update(payload, u);
        }
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.stats.appends += 1;
        self.stats.bytes_written += (header.len() + payload.len()) as u64;
        if matches!(self.durability, Durability::None) {
            self.pending.extend_from_slice(&header);
            self.pending.extend_from_slice(payload);
            return Ok(());
        }
        let ctx = || format!("appending to WAL {}", self.path.display());
        let start = self
            .file
            .stream_position()
            .map_err(|e| StorageError::io(ctx(), e))?;
        let result = self
            .file
            .write_all(&header)
            .and_then(|()| self.file.write_all(payload))
            .and_then(|()| {
                if matches!(self.durability, Durability::Fsync) {
                    self.stats.fsyncs += 1;
                    self.file.sync_data()
                } else {
                    Ok(())
                }
            });
        if let Err(e) = result {
            // Undo the partial/unacknowledged frame (best effort) so a failed — and therefore
            // unpublished — commit leaves no record: a surviving frame here would make a later
            // retry's epoch look non-monotone to replay and cut the log short at recovery.
            let _ = self.file.set_len(start);
            let _ = self.file.seek(SeekFrom::Start(start));
            return Err(StorageError::io(ctx(), e));
        }
        Ok(())
    }

    /// Force everything staged or written so far onto stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        let ctx = |op: &str| format!("{op} WAL {}", self.path.display());
        if !self.pending.is_empty() {
            self.file
                .write_all(&self.pending)
                .map_err(|e| StorageError::io(ctx("flushing"), e))?;
            self.pending.clear();
        }
        self.stats.fsyncs += 1;
        self.file
            .sync_data()
            .map_err(|e| StorageError::io(ctx("syncing"), e))
    }

    /// Cumulative counters of this log's work since it was opened.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Drop every logged frame (a checkpoint has made them redundant) and reset the file to
    /// empty.
    pub fn truncate(&mut self) -> Result<(), StorageError> {
        let ctx = |op: &str| format!("{op} WAL {}", self.path.display());
        self.pending.clear();
        self.file
            .set_len(0)
            .map_err(|e| StorageError::io(ctx("truncating"), e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StorageError::io(ctx("rewinding"), e))?;
        if matches!(self.durability, Durability::Fsync) {
            self.stats.fsyncs += 1;
            self.file
                .sync_data()
                .map_err(|e| StorageError::io(ctx("syncing"), e))?;
        }
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best effort: push `Durability::None` frames to the OS on clean shutdown. Failures
        // are acceptable here — None made no durability promise.
        if !self.pending.is_empty() {
            let _ = self.file.write_all(&self.pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphflow_graph::{EdgeLabel, PropValue};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gf_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(epoch: u64) -> WalBatch {
        WalBatch {
            epoch,
            updates: vec![
                Update::InsertEdge {
                    src: epoch as u32,
                    dst: epoch as u32 + 1,
                    label: EdgeLabel(0),
                },
                Update::SetVertexProp {
                    v: epoch as u32,
                    key: "k".into(),
                    value: PropValue::str(format!("v{epoch}")),
                },
            ],
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmpdir("round_trip");
        let (mut wal, rec) = Wal::open(&dir, Durability::Fsync).unwrap();
        assert!(rec.batches.is_empty());
        let batches: Vec<WalBatch> = (1..=5).map(batch).collect();
        for b in &batches {
            wal.append(b.epoch, &b.updates).unwrap();
        }
        drop(wal);
        let (_, rec) = Wal::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(rec.batches, batches);
        assert!(!rec.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn none_durability_stages_until_sync() {
        let dir = tmpdir("none_stages");
        let (mut wal, _) = Wal::open(&dir, Durability::None).unwrap();
        wal.append(1, &batch(1).updates).unwrap();
        // Nothing on disk yet: a crash here (simulated by replaying the file) loses the batch.
        assert_eq!(
            replay(&std::fs::read(wal_path(&dir)).unwrap())
                .batches
                .len(),
            0
        );
        wal.sync().unwrap();
        assert_eq!(
            replay(&std::fs::read(wal_path(&dir)).unwrap())
                .batches
                .len(),
            1
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_file_truncated() {
        let dir = tmpdir("torn_tail");
        let (mut wal, _) = Wal::open(&dir, Durability::Fsync).unwrap();
        for e in 1..=3 {
            wal.append(e, &batch(e).updates).unwrap();
        }
        drop(wal);
        let full = std::fs::read(wal_path(&dir)).unwrap();
        // Cut the file anywhere inside the last frame: the first two batches must survive.
        let boundary = {
            let two = replay(&full);
            assert_eq!(two.batches.len(), 3);
            let mut pos = 0usize;
            for _ in 0..2 {
                let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
            }
            pos
        };
        for cut in [boundary + 1, boundary + 7, full.len() - 1] {
            std::fs::write(wal_path(&dir), &full[..cut]).unwrap();
            let (_, rec) = Wal::open(&dir, Durability::Fsync).unwrap();
            assert_eq!(rec.batches.len(), 2, "cut at {cut}");
            assert!(rec.truncated_tail);
            assert_eq!(rec.valid_len, boundary as u64);
            // open() physically removed the tail.
            assert_eq!(
                std::fs::metadata(wal_path(&dir)).unwrap().len(),
                boundary as u64
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_bad_frame() {
        let dir = tmpdir("corrupt");
        let (mut wal, _) = Wal::open(&dir, Durability::Fsync).unwrap();
        for e in 1..=3 {
            wal.append(e, &batch(e).updates).unwrap();
        }
        drop(wal);
        let full = std::fs::read(wal_path(&dir)).unwrap();
        // Flipping any byte invalidates the frame holding it and everything after.
        for offset in (0..full.len()).step_by(3) {
            let mut damaged = full.clone();
            damaged[offset] ^= 0xA5;
            let rec = replay(&damaged);
            assert!(rec.batches.len() < 3, "flip at {offset} went unnoticed");
            // The surviving prefix is always a clean prefix of the original batches.
            for (i, b) in rec.batches.iter().enumerate() {
                assert_eq!(b, &batch(i as u64 + 1));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_continue_after_torn_tail_recovery() {
        let dir = tmpdir("continue");
        let (mut wal, _) = Wal::open(&dir, Durability::Buffered).unwrap();
        wal.append(1, &batch(1).updates).unwrap();
        wal.append(2, &batch(2).updates).unwrap();
        drop(wal);
        let full = std::fs::read(wal_path(&dir)).unwrap();
        std::fs::write(wal_path(&dir), &full[..full.len() - 3]).unwrap();
        let (mut wal, rec) = Wal::open(&dir, Durability::Buffered).unwrap();
        assert_eq!(rec.batches.len(), 1);
        wal.append(5, &batch(5).updates).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, Durability::Buffered).unwrap();
        assert_eq!(
            rec.batches.iter().map(|b| b.epoch).collect::<Vec<_>>(),
            vec![1, 5]
        );
        assert!(!rec.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = tmpdir("truncate");
        let (mut wal, _) = Wal::open(&dir, Durability::Fsync).unwrap();
        wal.append(1, &batch(1).updates).unwrap();
        wal.truncate().unwrap();
        wal.append(9, &batch(9).updates).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].epoch, 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_monotone_epochs_are_rejected() {
        let dir = tmpdir("monotone");
        let (mut wal, _) = Wal::open(&dir, Durability::Fsync).unwrap();
        wal.append(5, &batch(5).updates).unwrap();
        wal.append(4, &batch(4).updates).unwrap(); // would only happen via file damage
        drop(wal);
        let (_, rec) = Wal::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].epoch, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
