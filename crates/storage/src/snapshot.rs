//! Binary snapshot files: a complete frozen image of the database at one epoch.
//!
//! Layout (`snapshot-<epoch>.gfs`, all little-endian):
//!
//! ```text
//! [magic: 8 bytes "GFSNAP01"][format version: u32][epoch: u64]
//! [payload len: u64][crc32(payload): u32][payload]
//! payload = persisted catalogue counts ++ graph image (see graphflow_graph::serialize)
//! ```
//!
//! The payload is the CSR's flat arrays written verbatim, so the on-disk image mirrors the
//! in-memory layout (an mmap-based loader could reuse it). The whole payload is covered by one
//! CRC32; the header is validated field-by-field.
//!
//! **Atomicity.** A snapshot is written to `<name>.tmp`, fsynced, then renamed into place and
//! the directory fsynced — so a visible `snapshot-*.gfs` file is always complete. The two
//! newest snapshots are kept (the older one is the fallback if the newest is damaged by the
//! storage medium); everything older is pruned.

use crate::crc::crc32;
use crate::StorageError;
use graphflow_graph::serialize::{put_graph, put_u16, put_u32, put_u64, read_graph, Cursor};
use graphflow_graph::Graph;
use std::path::{Path, PathBuf};

/// Leading bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GFSNAP01";
/// Newest snapshot format this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;
/// File-name suffix of snapshot files.
pub const SNAPSHOT_SUFFIX: &str = ".gfs";
/// How many snapshot generations to keep on disk.
pub const SNAPSHOTS_KEPT: usize = 2;

/// The catalogue's exact counts, persisted alongside the graph so recovery does not have to
/// recount O(V + E) state that was maintained incrementally while the database ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistedCounts {
    /// `(vertex label, count)` pairs.
    pub vertex_counts: Vec<(u16, u64)>,
    /// `(edge label, source vertex label, destination vertex label, count)` tuples.
    pub edge_counts: Vec<(u16, u16, u16, u64)>,
}

/// A fully-decoded snapshot.
#[derive(Debug)]
pub struct SnapshotData {
    /// The epoch (snapshot version) the image was taken at.
    pub epoch: u64,
    /// The frozen CSR, including properties.
    pub graph: Graph,
    /// The catalogue counts at that epoch.
    pub counts: PersistedCounts,
}

/// The snapshot path for `epoch` inside `dir`. Epochs are zero-padded so lexicographic and
/// numeric order agree.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch:020}{SNAPSHOT_SUFFIX}"))
}

/// Parse the epoch out of a snapshot file name, if it is one.
fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(SNAPSHOT_SUFFIX)?
        .parse()
        .ok()
}

/// All snapshot epochs present in `dir`, newest first.
pub fn list_snapshots(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let mut epochs = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(epochs),
        Err(e) => {
            return Err(StorageError::io(
                format!("listing snapshots in {}", dir.display()),
                e,
            ))
        }
    };
    for entry in entries.flatten() {
        if let Some(epoch) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(epochs)
}

fn put_counts(out: &mut Vec<u8>, counts: &PersistedCounts) {
    put_u32(out, counts.vertex_counts.len() as u32);
    for &(label, n) in &counts.vertex_counts {
        put_u16(out, label);
        put_u64(out, n);
    }
    put_u32(out, counts.edge_counts.len() as u32);
    for &(el, sl, dl, n) in &counts.edge_counts {
        put_u16(out, el);
        put_u16(out, sl);
        put_u16(out, dl);
        put_u64(out, n);
    }
}

fn read_counts(cur: &mut Cursor<'_>) -> Result<PersistedCounts, graphflow_graph::DecodeError> {
    let nv = cur.read_u32()?;
    let mut vertex_counts = Vec::with_capacity((nv as usize).min(cur.remaining() / 10));
    for _ in 0..nv {
        vertex_counts.push((cur.read_u16()?, cur.read_u64()?));
    }
    let ne = cur.read_u32()?;
    let mut edge_counts = Vec::with_capacity((ne as usize).min(cur.remaining() / 14));
    for _ in 0..ne {
        edge_counts.push((
            cur.read_u16()?,
            cur.read_u16()?,
            cur.read_u16()?,
            cur.read_u64()?,
        ));
    }
    Ok(PersistedCounts {
        vertex_counts,
        edge_counts,
    })
}

/// Serialize and atomically install `snapshot-<epoch>.gfs` in `dir`, then prune old
/// generations down to [`SNAPSHOTS_KEPT`]. Returns the installed path.
pub fn write_snapshot(
    dir: &Path,
    graph: &Graph,
    epoch: u64,
    counts: &PersistedCounts,
) -> Result<PathBuf, StorageError> {
    let mut payload = Vec::new();
    put_counts(&mut payload, counts);
    put_graph(&mut payload, graph);

    let mut file_bytes = Vec::with_capacity(payload.len() + 32);
    file_bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    file_bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&epoch.to_le_bytes());
    file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file_bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    file_bytes.extend_from_slice(&payload);

    let final_path = snapshot_path(dir, epoch);
    let tmp_path = final_path.with_extension("gfs.tmp");
    let ctx = |op: &str, p: &Path| format!("{op} snapshot {}", p.display());
    std::fs::write(&tmp_path, &file_bytes)
        .map_err(|e| StorageError::io(ctx("writing", &tmp_path), e))?;
    let f = std::fs::File::open(&tmp_path)
        .map_err(|e| StorageError::io(ctx("reopening", &tmp_path), e))?;
    f.sync_all()
        .map_err(|e| StorageError::io(ctx("syncing", &tmp_path), e))?;
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| StorageError::io(ctx("installing", &final_path), e))?;
    // Make the rename itself durable. Directory fsync is POSIX-specific; failure to open the
    // directory is not fatal on platforms that don't support it.
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all()
            .map_err(|e| StorageError::io(format!("syncing directory {}", dir.display()), e))?;
    }

    // Prune old generations (best effort — a leftover snapshot is harmless).
    if let Ok(epochs) = list_snapshots(dir) {
        for &old in epochs.iter().skip(SNAPSHOTS_KEPT) {
            let _ = std::fs::remove_file(snapshot_path(dir, old));
        }
    }
    Ok(final_path)
}

/// Decode one snapshot file.
pub fn read_snapshot_file(path: &Path) -> Result<SnapshotData, StorageError> {
    let bytes = std::fs::read(path)
        .map_err(|e| StorageError::io(format!("reading snapshot {}", path.display()), e))?;
    let corrupt = |detail: String| StorageError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < 32 {
        return Err(corrupt(format!(
            "file is {} bytes, header needs 32",
            bytes.len()
        )));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let epoch = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
    let payload = &bytes[32..];
    if payload.len() != payload_len {
        return Err(corrupt(format!(
            "payload is {} bytes, header declares {payload_len}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(corrupt("payload checksum mismatch".into()));
    }
    let mut cur = Cursor::new(payload);
    let counts = read_counts(&mut cur).map_err(|e| corrupt(e.to_string()))?;
    let graph = read_graph(&mut cur).map_err(|e| corrupt(e.to_string()))?;
    if !cur.is_empty() {
        return Err(corrupt(format!(
            "{} trailing payload bytes",
            cur.remaining()
        )));
    }
    Ok(SnapshotData {
        epoch,
        graph,
        counts,
    })
}

/// Load the newest valid snapshot in `dir`, falling back across damaged generations.
///
/// Returns `Ok(None)` when no snapshot exists (a fresh database directory). When snapshots
/// exist but every one of them fails validation, the newest failure is returned — there is no
/// base image to recover from.
pub fn read_latest_snapshot(dir: &Path) -> Result<Option<SnapshotData>, StorageError> {
    let epochs = list_snapshots(dir)?;
    let mut first_err = None;
    for &epoch in &epochs {
        match read_snapshot_file(&snapshot_path(dir, epoch)) {
            Ok(s) => return Ok(Some(s)),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphflow_graph::{GraphBuilder, PropValue};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gf_snap_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(seed: u32) -> (Graph, PersistedCounts) {
        let mut b = GraphBuilder::new();
        b.add_edge(seed, seed + 1);
        b.add_edge(seed + 1, seed + 2);
        b.set_vertex_prop(0, "n", PropValue::Int(seed as i64))
            .unwrap();
        let g = b.build();
        let counts = PersistedCounts {
            vertex_counts: vec![(0, g.num_vertices() as u64)],
            edge_counts: vec![(0, 0, 0, g.num_edges() as u64)],
        };
        (g, counts)
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmpdir("round_trip");
        let (g, counts) = sample(0);
        let path = write_snapshot(&dir, &g, 42, &counts).unwrap();
        assert!(path.ends_with("snapshot-00000000000000000042.gfs"));
        let s = read_snapshot_file(&path).unwrap();
        assert_eq!(s.epoch, 42);
        assert_eq!(s.counts, counts);
        assert_eq!(s.graph.num_edges(), g.num_edges());
        assert_eq!(s.graph.edges(), g.edges());
        assert_eq!(s.graph.vertex_prop(0, "n"), Some(PropValue::Int(0)));
        s.graph.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keeps_two_generations_and_falls_back_on_damage() {
        let dir = tmpdir("generations");
        for epoch in [10u64, 20, 30] {
            let (g, counts) = sample(epoch as u32);
            write_snapshot(&dir, &g, epoch, &counts).unwrap();
        }
        assert_eq!(list_snapshots(&dir).unwrap(), vec![30, 20], "oldest pruned");
        // Damage the newest payload: recovery falls back to the previous generation.
        let newest = snapshot_path(&dir, 30);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() - 5;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let s = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(s.epoch, 20);
        // With every generation damaged, the error surfaces instead of a panic.
        let older = snapshot_path(&dir, 20);
        let mut bytes = std::fs::read(&older).unwrap();
        bytes[40] ^= 0xFF;
        std::fs::write(&older, &bytes).unwrap();
        assert!(matches!(
            read_latest_snapshot(&dir),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_validation() {
        let dir = tmpdir("header");
        let (g, counts) = sample(0);
        let path = write_snapshot(&dir, &g, 7, &counts).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(StorageError::Corrupt { .. })
        ));
        // Future format version.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(StorageError::UnsupportedVersion { found: 99, .. })
        ));
        // Truncated payload.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            read_snapshot_file(&path),
            Err(StorageError::Corrupt { .. })
        ));
        // Empty dir is a fresh database, not an error.
        let fresh = tmpdir("header_fresh");
        assert!(read_latest_snapshot(&fresh).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&fresh).unwrap();
    }
}
