//! Fault-injection test support: simulate crashes and media corruption by mutilating storage
//! files at arbitrary byte offsets.
//!
//! Lives in the library (not behind `cfg(test)`) so integration tests in other crates — the
//! durability round-trip and kill-and-reopen suites in `graphflow-core` — can drive the same
//! failure modes. Not intended for production use.

use std::io;
use std::path::{Path, PathBuf};

/// A handle over one storage file that can be damaged in controlled ways between database
/// sessions — the "failpoint" side of the crash-recovery tests.
#[derive(Debug, Clone)]
pub struct FailpointFile {
    path: PathBuf,
}

impl FailpointFile {
    /// Wrap `path` (typically [`crate::wal::wal_path`] of a closed database).
    pub fn new(path: impl Into<PathBuf>) -> FailpointFile {
        FailpointFile { path: path.into() }
    }

    /// The wrapped path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes.
    pub fn len(&self) -> io::Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len())
    }

    /// Whether the file is empty (or missing).
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len().unwrap_or(0) == 0)
    }

    /// Cut the file to `len` bytes — a torn write / power loss mid-append.
    pub fn truncate_at(&self, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(len)
    }

    /// XOR the byte at `offset` with `mask` (default-style single-byte media corruption).
    /// `offset` must be inside the file.
    pub fn corrupt_at(&self, offset: u64, mask: u8) -> io::Result<()> {
        let mut bytes = std::fs::read(&self.path)?;
        let i = usize::try_from(offset).ok().filter(|&i| i < bytes.len());
        let Some(i) = i else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("offset {offset} outside file of {} bytes", bytes.len()),
            ));
        };
        bytes[i] ^= if mask == 0 { 0xA5 } else { mask };
        std::fs::write(&self.path, bytes)
    }

    /// Append `junk` raw bytes — garbage past the last valid frame.
    pub fn append_garbage(&self, junk: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(junk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failpoints_mutilate_files() {
        let path = std::env::temp_dir().join(format!("gf_fault_{}.bin", std::process::id()));
        std::fs::write(&path, [0u8; 16]).unwrap();
        let fp = FailpointFile::new(&path);
        assert_eq!(fp.len().unwrap(), 16);
        fp.corrupt_at(3, 0xFF).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[3], 0xFF);
        fp.corrupt_at(3, 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[3], 0xFF ^ 0xA5);
        assert!(fp.corrupt_at(99, 0xFF).is_err(), "offset out of range");
        fp.truncate_at(4).unwrap();
        assert_eq!(fp.len().unwrap(), 4);
        fp.append_garbage(b"zz").unwrap();
        assert_eq!(fp.len().unwrap(), 6);
        assert!(!fp.is_empty().unwrap());
        std::fs::remove_file(&path).unwrap();
    }
}
