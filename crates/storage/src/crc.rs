//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Used to frame WAL records and checksum snapshot payloads. Implemented here because the
//! workspace builds with no external dependencies; the table is computed at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `data` (same parameters as zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
