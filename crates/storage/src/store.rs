//! The durability front door: one [`Store`] per database directory, owning the WAL and the
//! snapshot files, plus the recovery state handed to `GraphflowDB::open`.

use crate::snapshot::{self, PersistedCounts, SnapshotData};
use crate::wal::{Wal, WalBatch, WalStats};
use crate::{Durability, StorageError};
use graphflow_graph::{Graph, Update};
use std::path::{Path, PathBuf};

/// Everything recovery found in a database directory: the newest valid snapshot (if any) and
/// the WAL batches committed after it, in order.
#[derive(Debug)]
pub struct Recovered {
    /// The base image to start from; `None` for a fresh directory.
    pub snapshot: Option<SnapshotData>,
    /// Committed batches past the snapshot's epoch, to be replayed on top of it.
    pub batches: Vec<WalBatch>,
    /// Whether a torn/corrupt WAL tail was found and truncated — i.e. the database died
    /// mid-append and the last unacknowledged batch was dropped.
    pub wal_truncated: bool,
}

impl Recovered {
    /// The epoch the database reaches after replaying `batches` over `snapshot`.
    pub fn recovered_epoch(&self) -> u64 {
        self.batches
            .last()
            .map(|b| b.epoch)
            .or_else(|| self.snapshot.as_ref().map(|s| s.epoch))
            .unwrap_or(0)
    }
}

/// An open database directory: an append-position WAL plus the snapshot files around it.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    durability: Durability,
}

impl Store {
    /// Open (creating if needed) the database directory `dir` and run recovery: load the
    /// newest valid snapshot, replay the WAL's valid prefix, truncate any torn tail, and
    /// filter out batches already folded into the snapshot.
    pub fn open(
        dir: impl Into<PathBuf>,
        durability: Durability,
    ) -> Result<(Store, Recovered), StorageError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("creating data dir {}", dir.display()), e))?;
        let snapshot = snapshot::read_latest_snapshot(&dir)?;
        let (wal, replayed) = Wal::open(&dir, durability)?;
        // A record at or below the snapshot epoch was already folded in by the checkpoint
        // that wrote the snapshot — this is what makes a crash *between* snapshot install
        // and WAL truncation harmless.
        let snap_epoch = snapshot.as_ref().map_or(0, |s| s.epoch);
        let batches = replayed
            .batches
            .into_iter()
            .filter(|b| b.epoch > snap_epoch)
            .collect();
        Ok((
            Store {
                dir,
                wal,
                durability,
            },
            Recovered {
                snapshot,
                batches,
                wal_truncated: replayed.truncated_tail,
            },
        ))
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability policy commits run under.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Log one committed batch (called by `WriteTxn::commit` *before* the epoch is
    /// published). Durability on return follows the store's [`Durability`] policy.
    pub fn log_commit(&mut self, epoch: u64, updates: &[Update]) -> Result<(), StorageError> {
        self.wal.append(epoch, updates)
    }

    /// Force all logged-but-buffered frames onto stable storage (a fsync barrier usable under
    /// any durability policy).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Cumulative WAL counters (appends, bytes, fsyncs) since this store was opened.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Install a snapshot of the (compacted) `graph` at `epoch` and truncate the WAL — the
    /// checkpoint that compaction piggybacks on. `graph` must be the frozen base of the
    /// snapshot published at `epoch` (no pending deltas).
    pub fn checkpoint(
        &mut self,
        graph: &Graph,
        epoch: u64,
        counts: &PersistedCounts,
    ) -> Result<PathBuf, StorageError> {
        let path = snapshot::write_snapshot(&self.dir, graph, epoch, counts)?;
        self.wal.truncate()?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphflow_graph::{EdgeLabel, GraphBuilder};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gf_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.build()
    }

    fn insert(src: u32, dst: u32) -> Update {
        Update::InsertEdge {
            src,
            dst,
            label: EdgeLabel(0),
        }
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmpdir("fresh");
        let (_store, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.batches.is_empty());
        assert!(!rec.wal_truncated);
        assert_eq!(rec.recovered_epoch(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovery_skips_folded_batches() {
        let dir = tmpdir("checkpoint");
        let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
        store.log_commit(1, &[insert(0, 1)]).unwrap();
        store.log_commit(2, &[insert(1, 2)]).unwrap();
        store
            .checkpoint(&graph(), 2, &PersistedCounts::default())
            .unwrap();
        store.log_commit(3, &[insert(2, 3)]).unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        let snap = rec.snapshot.as_ref().unwrap();
        assert_eq!(snap.epoch, 2);
        assert_eq!(
            rec.batches.iter().map(|b| b.epoch).collect::<Vec<_>>(),
            vec![3],
            "batches at or below the snapshot epoch are skipped"
        );
        assert_eq!(rec.recovered_epoch(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_snapshot_and_wal_truncation_is_safe() {
        let dir = tmpdir("crash_window");
        let (mut store, _) = Store::open(&dir, Durability::Fsync).unwrap();
        store.log_commit(1, &[insert(0, 1)]).unwrap();
        store.log_commit(2, &[insert(1, 2)]).unwrap();
        // Simulate the crash window: snapshot installed, WAL *not* truncated.
        snapshot::write_snapshot(&dir, &graph(), 2, &PersistedCounts::default()).unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, Durability::Fsync).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().epoch, 2);
        assert!(
            rec.batches.is_empty(),
            "stale WAL records must not be replayed over the snapshot"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
