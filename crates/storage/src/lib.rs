//! # graphflow-storage
//!
//! The durability subsystem of Graphflow-RS: a write-ahead log, binary snapshots, and the
//! crash-recovery protocol that `graphflow-core` drives from `GraphflowDB::open`.
//!
//! The design follows the classic ARIES-lite shape used by embedded stores:
//!
//! * **WAL** ([`wal`]) — every committed `WriteTxn` batch is appended as one CRC32-framed,
//!   length-prefixed record carrying its epoch version and the effective [`Update`]s. Under
//!   [`Durability::Fsync`] the frame is `fdatasync`'d before the commit returns; recovery
//!   replays records in order and treats the first bad frame as the end of the log (a torn
//!   tail from a crash mid-append loses at most the unacknowledged batch).
//! * **Snapshots** ([`snapshot`]) — a compact binary image of the frozen CSR's flat arrays,
//!   the columnar property store and the catalogue's exact counts, with a versioned header and
//!   a whole-file checksum. Snapshots are written to a temp file and atomically renamed, so a
//!   visible snapshot is always complete; the two most recent are kept.
//! * **Checkpointing** ([`store::Store::checkpoint`]) — piggybacks on compaction: folding the
//!   delta overlay into a fresh CSR produces exactly the frozen graph a snapshot needs, so
//!   compaction doubles as checkpointing and truncates the WAL afterwards. A crash between
//!   the snapshot rename and the WAL truncation is safe because recovery skips WAL records at
//!   or below the snapshot's epoch.
//! * **Fault injection** ([`faults`]) — test support that truncates or corrupts files at
//!   arbitrary byte offsets, used by the recovery property tests.
//!
//! [`Update`]: graphflow_graph::Update

pub mod crc;
pub mod faults;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use faults::FailpointFile;
pub use snapshot::{PersistedCounts, SnapshotData};
pub use store::{Recovered, Store};
pub use wal::{Wal, WalBatch, WalRecovery, WalStats};

use graphflow_graph::loader::LoadError;
use std::fmt;
use std::path::PathBuf;

/// How much durability a commit buys before it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// WAL frames stay in a process-local buffer; a crash loses everything since the last
    /// checkpoint or explicit sync. Fastest — useful for bulk loads and tests.
    None,
    /// Frames are written to the OS page cache on every commit: a process crash loses
    /// nothing, a machine crash may lose recent commits.
    Buffered,
    /// Frames are `fdatasync`'d on every commit before it returns: a machine crash loses at
    /// most the in-flight batch. The default.
    #[default]
    Fsync,
}

/// Errors raised by the durability subsystem. Wrapped into `graphflow_core::Error::Storage`
/// at the facade; `source()` chains down to the underlying I/O error where one exists.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure, with the operation that hit it.
    Io {
        /// What the subsystem was doing (e.g. `"appending to WAL .../wal.log"`).
        context: String,
        source: std::io::Error,
    },
    /// A file exists but its contents fail validation (bad magic, checksum mismatch,
    /// malformed payload).
    Corrupt { path: PathBuf, detail: String },
    /// A snapshot written by an incompatible (newer) format version.
    UnsupportedVersion { path: PathBuf, found: u32 },
    /// An edge-list/vertex-list loader failure (see [`LoadError`]); unified here so every
    /// persistence path reports through one error type.
    Load(LoadError),
}

impl StorageError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> StorageError {
        StorageError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => write!(f, "i/o failure {context}: {source}"),
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt storage file {}: {detail}", path.display())
            }
            StorageError::UnsupportedVersion { path, found } => write!(
                f,
                "{} uses unsupported format version {found} (this build reads up to {})",
                path.display(),
                snapshot::FORMAT_VERSION
            ),
            StorageError::Load(e) => write!(f, "load failure: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Load(e) => Some(e),
            StorageError::Corrupt { .. } | StorageError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<LoadError> for StorageError {
    fn from(e: LoadError) -> Self {
        StorageError::Load(e)
    }
}
