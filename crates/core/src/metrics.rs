//! The db-wide metrics registry and the slow-query log.
//!
//! Every [`GraphflowDB`](crate::GraphflowDB) handle shares one [`MetricsRegistry`]: a set of
//! lock-free atomic counters plus a fixed-bucket latency histogram, accrued on the query and
//! commit paths with relaxed atomics (one `fetch_add` per event — never a lock, never an
//! allocation). [`GraphflowDB::metrics`](crate::GraphflowDB::metrics) snapshots the registry
//! (folding in the plan-cache counters and, on a persistent database, the WAL counters) into a
//! plain [`Metrics`] value whose [`render`](Metrics::render) emits Prometheus text exposition
//! format for scraping.
//!
//! The slow-query log is a bounded ring buffer ([`SLOW_LOG_CAPACITY`] entries) of queries that
//! ran past the threshold configured with
//! [`slow_query_threshold`](crate::GraphflowDBBuilder::slow_query_threshold); read it with
//! [`GraphflowDB::slow_queries`](crate::GraphflowDB::slow_queries).

use crate::plan_cache::PlanCacheStats;
use graphflow_storage::WalStats;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (nanoseconds) of the query-latency histogram's finite buckets; an implicit
/// `+Inf` bucket follows. Spanning 100µs to 10s covers everything from a cached point lookup
/// to a multi-second analytical match.
const LATENCY_BUCKET_BOUNDS_NS: [u64; 16] = [
    100_000,        // 100µs
    250_000,        // 250µs
    500_000,        // 500µs
    1_000_000,      // 1ms
    2_500_000,      // 2.5ms
    5_000_000,      // 5ms
    10_000_000,     // 10ms
    25_000_000,     // 25ms
    50_000_000,     // 50ms
    100_000_000,    // 100ms
    250_000_000,    // 250ms
    500_000_000,    // 500ms
    1_000_000_000,  // 1s
    2_500_000_000,  // 2.5s
    5_000_000_000,  // 5s
    10_000_000_000, // 10s
];

const NUM_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_NS.len() + 1; // + the +Inf bucket

/// A fixed-bucket latency histogram over lock-free atomic counters.
#[derive(Debug, Default)]
pub(crate) struct LatencyHisto {
    /// Per-bucket (non-cumulative) observation counts; the last slot is the `+Inf` bucket.
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyHisto {
    pub(crate) fn observe(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        // Count first, then buckets: a concurrent observe between the two loads can only make
        // the buckets sum to *more* than `count`, never less, keeping percentiles in range.
        let count = self.count.load(Ordering::Relaxed);
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let mut counts = [0u64; NUM_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        LatencyHistogram {
            counts,
            sum_ns,
            count,
        }
    }
}

/// A standalone, shareable latency histogram with the same fixed buckets as the db-wide
/// query-latency histogram — for callers layered *above* the database (the HTTP server keeps
/// one per tenant) that want their series rendered next to the core ones. Observations are
/// single relaxed atomic adds, safe from any thread.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    histo: LatencyHisto,
}

impl LatencyRecorder {
    /// A fresh recorder with all buckets empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&self, latency: Duration) {
        self.histo.observe(latency);
    }

    /// A point-in-time copy, with interpolated percentiles.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.histo.snapshot()
    }
}

/// Append the `# HELP` / `# TYPE ... histogram` header for a Prometheus histogram metric.
/// Emit it once, then one [`render_histogram_series`] per label set.
pub fn render_histogram_header(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
}

/// Append one labeled series of a Prometheus histogram: the cumulative `_bucket` lines (with
/// `le` merged into `labels`), then `_sum` and `_count`. `labels` is either empty or a
/// comma-joined list of `key="value"` pairs without braces (e.g. `tenant="acme"`).
pub fn render_histogram_series(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (bound, cumulative) in h.cumulative_buckets() {
        let le = match bound {
            Some(d) => format_bound(d),
            None => "+Inf".to_string(),
        };
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
        );
    }
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{braces} {}", h.sum().as_secs_f64());
    let _ = writeln!(out, "{name}_count{braces} {}", h.count());
}

/// A point-in-time copy of the query-latency histogram, with interpolated percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket (non-cumulative) observation counts; the last slot is the `+Inf` bucket.
    counts: [u64; NUM_BUCKETS],
    sum_ns: u64,
    count: u64,
}

impl LatencyHistogram {
    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed latencies.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns)
    }

    /// `(upper bound, observations ≤ bound)` pairs for the finite buckets, cumulative — the
    /// Prometheus `le` series — followed by the total count for `+Inf`.
    pub fn cumulative_buckets(&self) -> Vec<(Option<Duration>, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(NUM_BUCKETS);
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let bound = LATENCY_BUCKET_BOUNDS_NS
                .get(i)
                .map(|&ns| Duration::from_nanos(ns));
            out.push((bound, acc));
        }
        out
    }

    /// The latency below which `q` (in `[0, 1]`) of observations fall, linearly interpolated
    /// within its bucket; `None` before any observation. Observations past the last finite
    /// bound report that bound (the histogram cannot resolve further).
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = acc;
            acc += c;
            if (acc as f64) >= rank {
                let lower = if i == 0 {
                    0
                } else {
                    LATENCY_BUCKET_BOUNDS_NS[i - 1]
                };
                let Some(&upper) = LATENCY_BUCKET_BOUNDS_NS.get(i) else {
                    // +Inf bucket: saturate at the last finite bound.
                    return Some(Duration::from_nanos(
                        LATENCY_BUCKET_BOUNDS_NS[NUM_BUCKETS - 2],
                    ));
                };
                let fraction = if c == 0 {
                    0.0
                } else {
                    (rank - prev as f64) / c as f64
                };
                let ns = lower as f64 + fraction * (upper - lower) as f64;
                return Some(Duration::from_nanos(ns as u64));
            }
        }
        Some(Duration::from_nanos(
            LATENCY_BUCKET_BOUNDS_NS[NUM_BUCKETS - 2],
        ))
    }

    /// Median query latency (interpolated); `None` before any observation.
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 95th-percentile query latency (interpolated); `None` before any observation.
    pub fn p95(&self) -> Option<Duration> {
        self.quantile(0.95)
    }

    /// 99th-percentile query latency (interpolated); `None` before any observation.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }
}

/// The live registry owned by the database's shared state. All accruals are single relaxed
/// atomic adds; reading ([`GraphflowDB::metrics`](crate::GraphflowDB::metrics)) takes no lock
/// on the query path.
#[derive(Debug, Default)]
pub(crate) struct MetricsRegistry {
    pub(crate) queries_started: AtomicU64,
    pub(crate) queries_completed: AtomicU64,
    pub(crate) queries_cancelled: AtomicU64,
    pub(crate) queries_timed_out: AtomicU64,
    pub(crate) query_latency: LatencyHisto,
    pub(crate) txn_commits: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) checkpoint_ns: AtomicU64,
    pub(crate) snapshot_load_ns: AtomicU64,
}

impl MetricsRegistry {
    pub(crate) fn record_checkpoint(&self, elapsed: Duration) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_ns.fetch_add(
            elapsed.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    pub(crate) fn snapshot(&self, plan_cache: PlanCacheStats, wal: Option<WalStats>) -> Metrics {
        let wal = wal.unwrap_or_default();
        Metrics {
            queries_started: self.queries_started.load(Ordering::Relaxed),
            queries_completed: self.queries_completed.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
            queries_timed_out: self.queries_timed_out.load(Ordering::Relaxed),
            query_latency: self.query_latency.snapshot(),
            plan_cache,
            txn_commits: self.txn_commits.load(Ordering::Relaxed),
            wal_appends: wal.appends,
            wal_bytes_written: wal.bytes_written,
            wal_fsyncs: wal.fsyncs,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_time: Duration::from_nanos(self.checkpoint_ns.load(Ordering::Relaxed)),
            snapshot_load_time: Duration::from_nanos(self.snapshot_load_ns.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of every db-wide metric, returned by
/// [`GraphflowDB::metrics`](crate::GraphflowDB::metrics).
///
/// Counters are cumulative since the database handle was created (WAL counters: since the
/// directory was opened). [`render`](Metrics::render) emits the whole set in Prometheus text
/// exposition format.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Queries whose execution began (prepared-statement runs included).
    pub queries_started: u64,
    /// Queries that ran to completion.
    pub queries_completed: u64,
    /// Queries stopped through a [`CancellationToken`](crate::CancellationToken).
    pub queries_cancelled: u64,
    /// Queries stopped by their wall-clock deadline.
    pub queries_timed_out: u64,
    /// Latency histogram over every finished query (completed, cancelled or timed out).
    pub query_latency: LatencyHistogram,
    /// Plan-cache counters (hits, misses, evictions, invalidations, size).
    pub plan_cache: PlanCacheStats,
    /// Committed write transactions.
    pub txn_commits: u64,
    /// WAL commit frames appended (0 for an in-memory database).
    pub wal_appends: u64,
    /// WAL bytes written (0 for an in-memory database).
    pub wal_bytes_written: u64,
    /// WAL fsync calls issued (0 for an in-memory database).
    pub wal_fsyncs: u64,
    /// Checkpoints written (explicit and compaction-piggybacked).
    pub checkpoints: u64,
    /// Total wall time spent writing checkpoints.
    pub checkpoint_time: Duration,
    /// Time spent loading the snapshot (and replaying the WAL) when the database was opened;
    /// zero for an in-memory database.
    pub snapshot_load_time: Duration,
}

impl Metrics {
    /// Render every metric in Prometheus text exposition format (`text/plain; version=0.0.4`),
    /// ready to serve from a `/metrics` endpoint.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "graphflow_queries_started_total",
            "Queries whose execution began.",
            self.queries_started,
        );
        counter(
            "graphflow_queries_completed_total",
            "Queries that ran to completion.",
            self.queries_completed,
        );
        counter(
            "graphflow_queries_cancelled_total",
            "Queries stopped through a cancellation token.",
            self.queries_cancelled,
        );
        counter(
            "graphflow_queries_timed_out_total",
            "Queries stopped by their wall-clock deadline.",
            self.queries_timed_out,
        );
        counter(
            "graphflow_plan_cache_hits_total",
            "Plan-cache hits.",
            self.plan_cache.hits,
        );
        counter(
            "graphflow_plan_cache_misses_total",
            "Plan-cache misses (optimizer invocations).",
            self.plan_cache.misses,
        );
        counter(
            "graphflow_plan_cache_invalidations_total",
            "Cached plans dropped for staleness.",
            self.plan_cache.invalidations,
        );
        counter(
            "graphflow_plan_cache_evictions_total",
            "Cached plans evicted by the LRU policy.",
            self.plan_cache.evictions,
        );
        counter(
            "graphflow_txn_commits_total",
            "Committed write transactions.",
            self.txn_commits,
        );
        counter(
            "graphflow_wal_appends_total",
            "WAL commit frames appended.",
            self.wal_appends,
        );
        counter(
            "graphflow_wal_bytes_written_total",
            "WAL bytes written.",
            self.wal_bytes_written,
        );
        counter(
            "graphflow_wal_fsyncs_total",
            "WAL fsync calls issued.",
            self.wal_fsyncs,
        );
        counter(
            "graphflow_checkpoints_total",
            "Checkpoints written.",
            self.checkpoints,
        );
        let mut gauge = |name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "graphflow_plan_cache_entries",
            "Plans currently cached.",
            self.plan_cache.entries as f64,
        );
        gauge(
            "graphflow_plan_cache_capacity",
            "Plan-cache capacity.",
            self.plan_cache.capacity as f64,
        );
        gauge(
            "graphflow_checkpoint_seconds_total",
            "Total wall time spent writing checkpoints.",
            self.checkpoint_time.as_secs_f64(),
        );
        gauge(
            "graphflow_snapshot_load_seconds",
            "Time spent loading the snapshot and replaying the WAL at open.",
            self.snapshot_load_time.as_secs_f64(),
        );
        let name = "graphflow_query_latency_seconds";
        render_histogram_header(&mut out, name, "Wall-clock latency of finished queries.");
        render_histogram_series(&mut out, name, "", &self.query_latency);
        out
    }
}

/// A bucket bound in seconds, trimmed of trailing zeros (`0.0001`, `0.25`, `1`, `10`).
fn format_bound(d: Duration) -> String {
    let mut s = format!("{:.7}", d.as_secs_f64());
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Number of entries the slow-query ring buffer keeps; older entries are dropped first.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// One slow-query record, kept when a run's latency reached the configured
/// [`slow_query_threshold`](crate::GraphflowDBBuilder::slow_query_threshold).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// The executed query in canonical pattern text (the plan's own rendering — for a query
    /// served by an isomorphic twin's cached plan, the twin's vertex names).
    pub query: String,
    /// Wall-clock latency of the run.
    pub latency: Duration,
    /// Actual i-cost of the run.
    pub icost: u64,
    /// Structural fingerprint of the executed plan (stable across runs of the same plan).
    pub plan_id: String,
}

/// The bounded slow-query ring buffer; present on the shared state only when a threshold was
/// configured, so the common unconfigured case pays one `Option` check per query.
#[derive(Debug)]
pub(crate) struct SlowLog {
    threshold: Duration,
    ring: Mutex<VecDeque<SlowQuery>>,
}

impl SlowLog {
    pub(crate) fn new(threshold: Duration) -> Self {
        SlowLog {
            threshold,
            ring: Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)),
        }
    }

    pub(crate) fn threshold(&self) -> Duration {
        self.threshold
    }

    pub(crate) fn record(&self, entry: SlowQuery) {
        let mut ring = self.ring.lock();
        if ring.len() == SLOW_LOG_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    pub(crate) fn entries(&self) -> Vec<SlowQuery> {
        self.ring.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHisto::default();
        for _ in 0..90 {
            h.observe(Duration::from_micros(200)); // bucket le=250µs
        }
        for _ in 0..10 {
            h.observe(Duration::from_millis(40)); // bucket le=50ms
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.p50().unwrap();
        assert!(p50 >= Duration::from_micros(100) && p50 <= Duration::from_micros(250));
        let p99 = snap.p99().unwrap();
        assert!(p99 >= Duration::from_millis(25) && p99 <= Duration::from_millis(50));
        // Cumulative buckets are monotone and end at the total count.
        let buckets = snap.cumulative_buckets();
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(buckets.last().unwrap().1, 100);
        assert!(buckets.last().unwrap().0.is_none(), "+Inf last");
    }

    #[test]
    fn quantiles_saturate_at_the_last_finite_bound() {
        let h = LatencyHisto::default();
        h.observe(Duration::from_secs(60)); // beyond the last bound: +Inf bucket
        let snap = h.snapshot();
        assert_eq!(snap.p99(), Some(Duration::from_secs(10)));
        assert!(snap.sum() >= Duration::from_secs(60));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let snap = LatencyHisto::default().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), None);
    }

    #[test]
    fn slow_log_is_a_bounded_ring() {
        let log = SlowLog::new(Duration::from_millis(1));
        for i in 0..(SLOW_LOG_CAPACITY + 10) {
            log.record(SlowQuery {
                query: format!("q{i}"),
                latency: Duration::from_millis(2),
                icost: i as u64,
                plan_id: "p".into(),
            });
        }
        let entries = log.entries();
        assert_eq!(entries.len(), SLOW_LOG_CAPACITY);
        assert_eq!(entries[0].query, "q10", "oldest entries dropped first");
        assert_eq!(
            entries.last().unwrap().icost,
            (SLOW_LOG_CAPACITY + 9) as u64
        );
    }

    #[test]
    fn render_emits_valid_prometheus_lines() {
        let reg = MetricsRegistry::default();
        reg.queries_started.fetch_add(3, Ordering::Relaxed);
        reg.query_latency.observe(Duration::from_millis(3));
        let text = reg.snapshot(PlanCacheStats::default(), None).render();
        assert!(text.contains("graphflow_queries_started_total 3"));
        assert!(text.contains("# TYPE graphflow_query_latency_seconds histogram"));
        assert!(text.contains("graphflow_query_latency_seconds_bucket{le=\"0.0001\"} 0"));
        assert!(text.contains("graphflow_query_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("graphflow_query_latency_seconds_count 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').unwrap();
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
    }
}
