//! Prepared queries: parse + canonicalize + optimize once, execute many times — from any
//! thread — plus the [`QueryHandle`] wrapper for cancellable background execution.

use crate::explain::QueryProfile;
use crate::{CancellationToken, Error, GraphflowDB, QueryOptions, QueryResult};
use graphflow_exec::{MatchSink, PartialSink, RuntimeStats};
use graphflow_graph::{Snapshot, VertexId};
use graphflow_plan::{PlanClass, PlanHandle};
use graphflow_query::QueryGraph;

/// A query whose expensive front half — parsing, canonicalization and cost-based optimization —
/// has already been done. Created by [`GraphflowDB::prepare`] (or
/// [`GraphflowDB::prepare_query`]); rerunnable any number of times with different
/// [`QueryOptions`] or result sinks.
///
/// The underlying plan comes from the database's LRU plan cache, keyed on the *canonical* form
/// of the query graph **and the graph statistics version**: preparing an isomorphic rewriting
/// of an earlier pattern (same shape, different vertex names or clause order) reuses the cached
/// plan without invoking the optimizer, and result tuples are transparently remapped back to
/// this query's own vertex numbering — while a pattern prepared after the graph drifted past
/// the staleness threshold is re-optimized against current statistics.
///
/// A prepared query is **owned** (`'static`): it holds a cloned [`GraphflowDB`] handle and
/// `Arc`-shared plan, so it is `Send + Sync`, cheap to [`Clone`], and executable from any
/// thread — including concurrently with writes to the same database. Every
/// [`run`](PreparedQuery::run) pins the database's current snapshot for its whole execution
/// (use [`run_on`](PreparedQuery::run_on) to pin an explicit epoch instead); re-prepare (cheap
/// on a cache hit) after applying updates to pick up a re-optimized plan eagerly.
#[derive(Clone)]
pub struct PreparedQuery {
    pub(crate) db: GraphflowDB,
    pub(crate) query: QueryGraph,
    pub(crate) plan: PlanHandle,
    /// `Some(map)` when the cached plan was optimized for an isomorphic twin of `query`:
    /// `map[plan query vertex] = our query vertex`.
    pub(crate) remap: Option<Vec<usize>>,
    pub(crate) cache_hit: bool,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("query", &self.query)
            .field("plan_class", &self.plan.class())
            .field("estimated_cost", &self.plan.estimated_cost)
            .field("cache_hit", &self.cache_hit)
            .finish_non_exhaustive()
    }
}

impl PreparedQuery {
    /// The parsed query graph this statement answers.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The (shared) plan that will be executed.
    pub fn plan(&self) -> &PlanHandle {
        &self.plan
    }

    /// The plan's class (WCO / BJ / hybrid).
    pub fn plan_class(&self) -> PlanClass {
        self.plan.class()
    }

    /// Whether preparation was served from the plan cache (i.e. the optimizer was skipped).
    pub fn was_cached(&self) -> bool {
        self.cache_hit
    }

    /// `EXPLAIN`: the prepared plan as a typed [`QueryProfile`] — the operator tree with
    /// the catalogue's estimated cardinality and cumulative cost on every node. Nothing is
    /// executed. `Display` renders the classic indented tree; [`QueryProfile::to_json`]
    /// serializes it.
    pub fn explain(&self) -> QueryProfile {
        let catalogue = self.db.catalogue();
        let model = *self.db.shared.cost_model.read();
        QueryProfile::estimate(&self.plan, &catalogue, &model)
    }

    /// `PROFILE`: execute the query with per-operator profiling and return the plan tree
    /// annotated with **both** estimates and actuals ([`QueryProfile`] with
    /// [`stats`](QueryProfile::stats) set). The summed per-operator counters equal the run's
    /// [`RuntimeStats`] totals exactly; profiling adds one counter struct per operator and
    /// two timestamp reads per batch, nothing more.
    ///
    /// The query runs to completion under `options` (with
    /// [`profile`](QueryOptions::profile) forced on), so cancellation, timeouts and output
    /// limits all behave as in [`run`](PreparedQuery::run) — except that a cancelled or
    /// timed-out run surfaces as its usual error rather than a partial profile.
    pub fn profile(&self, options: QueryOptions) -> Result<QueryProfile, Error> {
        let result = self.run(options.profile(true))?;
        let catalogue = self.db.catalogue();
        let model = *self.db.shared.cost_model.read();
        Ok(QueryProfile::profiled(
            &self.plan,
            &catalogue,
            &model,
            result.stats,
        ))
    }

    /// Count the matches with default options.
    ///
    /// Counts the raw match stream; the query's `RETURN` clause (if any) is not applied —
    /// use [`execute`](PreparedQuery::execute) for `RETURN` semantics.
    pub fn count(&self) -> Result<u64, Error> {
        Ok(self.run(QueryOptions::default())?.count)
    }

    /// Execute the query's `RETURN` clause, producing a typed [`ResultSet`](crate::ResultSet)
    /// of rows (projections) or groups (aggregates). A query without `RETURN` behaves as
    /// `RETURN *`.
    ///
    /// Aggregates fold **streamingly** — memory is O(groups), never O(matches) — and
    /// `RETURN COUNT(*)` composes with the planner's fast path so the final extension column
    /// is bulk-counted instead of materialised
    /// (`ResultSet::stats.bulk_counted_extensions` counts the shortcut firing).
    pub fn execute(&self, options: QueryOptions) -> Result<crate::ResultSet, Error> {
        self.execute_on(&self.db.snapshot(), options)
    }

    /// [`execute`](PreparedQuery::execute) against an explicit, caller-pinned snapshot epoch
    /// instead of the database's current one.
    pub fn execute_on(
        &self,
        snapshot: &Snapshot,
        options: QueryOptions,
    ) -> Result<crate::ResultSet, Error> {
        self.db.execute_prepared_return(
            snapshot,
            &self.query,
            &self.plan,
            self.remap.as_deref(),
            self.cache_hit,
            options,
        )
    }

    /// Execute with explicit options, materialising a [`QueryResult`].
    pub fn run(&self, options: QueryOptions) -> Result<QueryResult, Error> {
        self.run_on(&self.db.snapshot(), options)
    }

    /// [`run`](PreparedQuery::run) against an explicit, caller-pinned snapshot epoch instead
    /// of the database's current one. Snapshots are immutable, so running on the same
    /// snapshot always reproduces the same result no matter what has been committed since —
    /// the primitive behind repeatable reads and the concurrency test oracle.
    pub fn run_on(&self, snapshot: &Snapshot, options: QueryOptions) -> Result<QueryResult, Error> {
        self.db.execute_prepared(
            snapshot,
            &self.plan,
            self.remap.as_deref(),
            self.cache_hit,
            options,
        )
    }

    /// Column headers of this query's `RETURN` clause (a missing clause counts as
    /// `RETURN *`), in declaration order — the header a streaming consumer needs before the
    /// first row arrives.
    pub fn return_columns(&self) -> Vec<String> {
        let clause = self
            .query
            .return_clause()
            .cloned()
            .unwrap_or_else(graphflow_query::returns::ReturnClause::star);
        clause.column_names(&self.query)
    }

    /// Whether this query's `RETURN` clause can be streamed row-by-row in O(1) memory (see
    /// [`RowSpec::is_streamable`](graphflow_exec::RowSpec::is_streamable)); aggregate,
    /// `ORDER BY` and `DISTINCT` clauses must buffer and go through
    /// [`execute`](PreparedQuery::execute) instead.
    pub fn is_streamable_projection(&self) -> bool {
        let clause = self
            .query
            .return_clause()
            .cloned()
            .unwrap_or_else(graphflow_query::returns::ReturnClause::star);
        graphflow_exec::RowSpec::compile(&self.query, &clause).is_streamable()
    }

    /// Execute, delivering each projected [`Row`](graphflow_exec::Row) of the `RETURN` clause
    /// to `emit` the moment its match is found — constant memory no matter how many rows
    /// there are. `emit` returns `false` to stop early; `LIMIT` is honoured. The whole run
    /// pins one snapshot, so rows and their property values are mutually consistent.
    ///
    /// Errors with [`Error::InvalidOptions`] when the clause is
    /// [not streamable](PreparedQuery::is_streamable_projection).
    pub fn stream_rows<F>(&self, options: QueryOptions, emit: F) -> Result<RuntimeStats, Error>
    where
        F: FnMut(graphflow_exec::Row) -> bool + Send,
    {
        let clause = self
            .query
            .return_clause()
            .cloned()
            .unwrap_or_else(graphflow_query::returns::ReturnClause::star);
        let spec = graphflow_exec::RowSpec::compile(&self.query, &clause);
        if !spec.is_streamable() {
            return Err(Error::InvalidOptions(
                "RETURN clause is not streamable (aggregates, ORDER BY and DISTINCT must \
                 buffer rows); use execute() instead"
                    .into(),
            ));
        }
        let view = self.db.snapshot();
        let mut sink = graphflow_exec::RowStreamSink::new(view.clone(), spec, emit);
        self.db.execute_prepared_with_sink(
            &view,
            &self.plan,
            self.remap.as_deref(),
            self.cache_hit,
            options,
            &mut sink,
        )
    }

    /// Execute, streaming every match (in this query's vertex order) into `sink` instead of
    /// materialising results — constant memory no matter how many matches there are.
    pub fn run_with_sink(
        &self,
        options: QueryOptions,
        sink: &mut (dyn MatchSink + Send),
    ) -> Result<RuntimeStats, Error> {
        self.db.execute_prepared_with_sink(
            &self.db.snapshot(),
            &self.plan,
            self.remap.as_deref(),
            self.cache_hit,
            options,
            sink,
        )
    }

    /// Start executing on a background thread, returning a [`QueryHandle`] that can be
    /// cancelled from any thread and joined for the result.
    ///
    /// The handle's [`CancellationToken`] is the one from `options` when present (so one token
    /// can govern several runs), freshly created otherwise.
    ///
    /// ```
    /// use graphflow_core::{Error, GraphflowDB, QueryOptions};
    /// use graphflow_graph::GraphBuilder;
    /// let mut b = GraphBuilder::new();
    /// for i in 0..8u32 {
    ///     for j in 0..8u32 {
    ///         if i != j {
    ///             b.add_edge(i, j);
    ///         }
    ///     }
    /// }
    /// let db = GraphflowDB::from_graph(b.build());
    /// let q = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    /// let handle = q.execute_handle(QueryOptions::new());
    /// handle.cancel(); // any thread holding the handle (or its token) can do this
    /// match handle.join() {
    ///     Ok(result) => assert_eq!(result.count, 336), // finished before the cancel landed
    ///     Err(e) => assert!(matches!(e, Error::Cancelled)),
    /// }
    /// ```
    pub fn execute_handle(&self, options: QueryOptions) -> QueryHandle {
        let token = options.cancel.clone().unwrap_or_default();
        let options = options.cancel_token(token.clone());
        let prepared = self.clone();
        let thread = std::thread::spawn(move || prepared.run(options));
        QueryHandle { token, thread }
    }
}

/// A query executing on a background thread, started by [`PreparedQuery::execute_handle`].
///
/// [`cancel`](QueryHandle::cancel) (or cancelling any clone of [`token`](QueryHandle::token))
/// stops the run cooperatively within one batch of work; [`join`](QueryHandle::join) then
/// returns [`Error::Cancelled`]. A run that completes before the cancellation lands returns
/// its result normally.
#[derive(Debug)]
pub struct QueryHandle {
    token: CancellationToken,
    thread: std::thread::JoinHandle<Result<QueryResult, Error>>,
}

impl QueryHandle {
    /// Request cancellation; the running query returns [`Error::Cancelled`] within one batch
    /// of work. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the run's [`CancellationToken`] — hand it to watchdogs or admin threads
    /// that should be able to stop the query without holding the handle.
    pub fn token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// Whether the background run has finished (successfully or not) without blocking.
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Wait for the run and return its result ([`Error::Cancelled`] if it was cancelled,
    /// [`Error::Timeout`] if its deadline elapsed).
    ///
    /// # Panics
    ///
    /// Propagates a panic from the query thread.
    pub fn join(self) -> Result<QueryResult, Error> {
        self.thread.join().expect("query thread panicked")
    }
}

/// Reorders tuples from the cached plan's vertex numbering into the prepared query's own
/// numbering before forwarding them to the user's sink.
pub(crate) struct RemapSink<'a> {
    inner: &'a mut (dyn MatchSink + Send),
    /// `map[plan query vertex] = prepared query vertex`.
    map: &'a [usize],
    scratch: Vec<VertexId>,
}

impl<'a> RemapSink<'a> {
    pub(crate) fn new(inner: &'a mut (dyn MatchSink + Send), map: &'a [usize]) -> Self {
        let scratch = vec![0 as VertexId; map.len()];
        RemapSink {
            inner,
            map,
            scratch,
        }
    }
}

impl MatchSink for RemapSink<'_> {
    fn needs_tuples(&self) -> bool {
        self.inner.needs_tuples()
    }

    fn on_match(&mut self, tuple: &[VertexId]) -> bool {
        for (plan_vertex, &our_vertex) in self.map.iter().enumerate() {
            self.scratch[our_vertex] = tuple[plan_vertex];
        }
        self.inner.on_match(&self.scratch)
    }

    fn on_count(&mut self, n: u64) {
        self.inner.on_count(n);
    }

    // Forward the thread-local partial-aggregation protocol, wrapping each partial with the
    // same vertex remap — so executing a plan cached for an isomorphic twin keeps the
    // parallel executor's lock-free per-match path.
    fn fork_partial(&self) -> Option<Box<dyn PartialSink>> {
        let inner = self.inner.fork_partial()?;
        Some(Box::new(RemapPartial {
            inner,
            map: self.map.to_vec(),
            scratch: vec![0 as VertexId; self.map.len()],
        }))
    }

    fn absorb_partial(&mut self, partial: Box<dyn PartialSink>) {
        let partial = partial
            .into_any()
            .downcast::<RemapPartial>()
            .expect("partial forked from this sink");
        self.inner.absorb_partial(partial.inner);
    }
}

/// The thread-local twin of a [`RemapSink`]: reorders each tuple into the prepared query's
/// vertex numbering, then folds it into the wrapped sink's own partial.
struct RemapPartial {
    inner: Box<dyn PartialSink>,
    /// `map[plan query vertex] = prepared query vertex`.
    map: Vec<usize>,
    scratch: Vec<VertexId>,
}

impl PartialSink for RemapPartial {
    fn on_match(&mut self, tuple: &[VertexId]) -> bool {
        for (plan_vertex, &our_vertex) in self.map.iter().enumerate() {
            self.scratch[our_vertex] = tuple[plan_vertex];
        }
        self.inner.on_match(&self.scratch)
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}
