//! The `EXPLAIN` / `PROFILE` surface: a typed operator-tree report.
//!
//! [`QueryProfile`] is the structured answer to both verbs. `EXPLAIN` builds one from the
//! chosen plan alone, annotating every operator with the catalogue's estimated cardinality
//! and cumulative cost ([`PreparedQuery::explain`](crate::PreparedQuery::explain));
//! `PROFILE` executes the query with per-operator profiling on and attaches each operator's
//! actual counters next to its estimates
//! ([`PreparedQuery::profile`](crate::PreparedQuery::profile)). Both are also reachable
//! through [`GraphflowDB::query`](crate::GraphflowDB::query) by prefixing the pattern with
//! the verb (`EXPLAIN (a)->(b), ...`), which renders the tree as a one-column
//! [`ResultSet`].
//!
//! The report is plain data: walk [`ProfileNode`]s directly, [`Display`](std::fmt::Display)
//! it as an indented tree, or serialize it with [`QueryProfile::to_json`].

use crate::results::ResultSet;
use graphflow_catalog::Catalogue;
use graphflow_exec::{CandidateProfile, OpCounters, OpKind, OpProfile, RuntimeStats};
use graphflow_graph::PropValue;
use graphflow_plan::cost::{estimate_cost, CostModel};
use graphflow_plan::{Plan, PlanClass, PlanNode};
use graphflow_query::QueryGraph;
use std::fmt;

/// One operator of an `EXPLAIN`/`PROFILE` report, mirroring the plan's operator tree.
///
/// Children are upstream operators: an E/I node has one child (its input), a `HASH-JOIN`
/// node has two (`children[0]` = build side, `children[1]` = probe side), a `SCAN` none.
/// Under adaptive execution a chain of E/I operators that ran as one adaptive stage
/// collapses into a single `ADAPTIVE EXTEND/INTERSECT` node carrying the per-candidate
/// ordering profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Human-readable operator label (`SCAN (a)->(b) [label 0]`,
    /// `EXTEND/INTERSECT -> c using {a.fwd[0], b.fwd[0]}`, `HASH-JOIN on [b]`), using the
    /// planned query's vertex names.
    pub operator: String,
    /// Estimated output cardinality of this operator's subtree (catalogue estimate times
    /// predicate selectivity — what the optimizer believed).
    pub est_rows: f64,
    /// Estimated cumulative cost of the subtree in i-cost units (Equation 1 / the
    /// hash-join cost normalisation), children included.
    pub est_cost: f64,
    /// The operator's actual counters — `Some` only in a `PROFILE` report. Counter times are
    /// self-times; rows produced are `tuples_out` for intermediate operators and `outputs`
    /// for the final one.
    pub actual: Option<OpCounters>,
    /// Adaptive stages only: one profile per candidate ordering (how many tuples per-tuple
    /// re-costing routed to it, and what its steps did).
    pub candidates: Vec<CandidateProfile>,
    /// Upstream operators: `[input]` for E/I, `[build, probe]` for `HASH-JOIN`, empty for
    /// `SCAN`.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Rows this operator actually produced (`tuples_out` + `outputs` — for any single
    /// operator exactly one of the two is non-zero); `None` in an `EXPLAIN`-only report.
    pub fn actual_rows(&self) -> Option<u64> {
        self.actual.as_ref().map(|c| c.tuples_out + c.outputs)
    }

    /// The q-error of the optimizer's cardinality estimate for this operator:
    /// `max(est/actual, actual/est)`, always ≥ 1.0 (1.0 = perfect estimate). `None` in
    /// `EXPLAIN`-only reports, or when exactly one of the two sides is zero (the ratio is
    /// unbounded); zero estimated *and* zero actual counts as perfect.
    pub fn q_error(&self) -> Option<f64> {
        let actual = self.actual_rows()? as f64;
        let est = self.est_rows;
        if actual <= 0.0 && est <= 0.0 {
            return Some(1.0);
        }
        if actual <= 0.0 || est <= 0.0 {
            return None;
        }
        Some((est / actual).max(actual / est))
    }

    /// Number of operator nodes in the subtree (an adaptive stage counts as one).
    pub fn num_operators(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| c.num_operators())
            .sum::<usize>()
    }
}

/// The typed result of `EXPLAIN` or `PROFILE`: the chosen plan as an operator tree with
/// estimated cardinalities and costs, plus (for `PROFILE`) per-operator actuals and the
/// run's [`RuntimeStats`].
///
/// ```
/// use graphflow_core::GraphflowDB;
/// use graphflow_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(0, 2);
/// let db = GraphflowDB::from_graph(b.build());
/// let q = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
///
/// let explained = q.explain(); // estimates only
/// assert!(explained.to_string().contains("EXTEND/INTERSECT"));
/// assert!(explained.stats.is_none());
///
/// let profiled = q.profile(Default::default()).unwrap(); // executed, with actuals
/// assert_eq!(profiled.stats.as_ref().unwrap().output_count, 1);
/// assert!(profiled.root.actual_rows().is_some());
/// assert!(profiled.to_json().starts_with('{'));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// The planned query in pattern syntax (for a query served by an isomorphic twin's
    /// cached plan, the twin's vertex names — the same naming the tree's labels use).
    pub query: String,
    /// The plan's class (WCO / BJ / hybrid).
    pub plan_class: PlanClass,
    /// The optimizer's estimated total cost in i-cost units.
    pub estimated_cost: f64,
    /// The operator tree, root = the operator producing the query's results.
    pub root: ProfileNode,
    /// The run's totals — `Some` only for `PROFILE`. Every per-operator counter in the tree
    /// sums exactly to its total here.
    pub stats: Option<RuntimeStats>,
}

impl QueryProfile {
    /// Build an estimate-only (`EXPLAIN`) report for a plan.
    pub(crate) fn estimate(plan: &Plan, catalogue: &Catalogue, model: &CostModel) -> QueryProfile {
        QueryProfile {
            query: plan.query.to_string(),
            plan_class: plan.class(),
            estimated_cost: plan.estimated_cost,
            root: estimate_node(&plan.root, &plan.query, catalogue, model),
            stats: None,
        }
    }

    /// Build a `PROFILE` report: the estimate tree annotated with the actuals of `stats`'s
    /// per-operator profile (falls back to estimates only if the run carried no profile).
    pub(crate) fn profiled(
        plan: &Plan,
        catalogue: &Catalogue,
        model: &CostModel,
        stats: RuntimeStats,
    ) -> QueryProfile {
        let root = match &stats.profile {
            Some(prof) => annotate(&plan.root, prof, &plan.query, catalogue, model),
            None => estimate_node(&plan.root, &plan.query, catalogue, model),
        };
        QueryProfile {
            query: plan.query.to_string(),
            plan_class: plan.class(),
            estimated_cost: plan.estimated_cost,
            root,
            stats: Some(stats),
        }
    }

    /// Whether the report carries actuals (i.e. came from `PROFILE`, not `EXPLAIN`).
    pub fn executed(&self) -> bool {
        self.stats.is_some()
    }

    /// Serialize the whole report as a self-contained JSON object (no external schema):
    /// `{"query", "plan_class", "estimated_cost", "executed", "stats", "root"}`, where
    /// `root` nests `{"operator", "est_rows", "est_cost", "actual", "candidates",
    /// "children"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!("\"query\":{}", json_str(&self.query)));
        out.push_str(&format!(
            ",\"plan_class\":{}",
            json_str(&self.plan_class.to_string())
        ));
        out.push_str(&format!(
            ",\"estimated_cost\":{}",
            json_f64(self.estimated_cost)
        ));
        out.push_str(&format!(",\"executed\":{}", self.executed()));
        out.push_str(",\"stats\":");
        match &self.stats {
            Some(s) => json_stats(s, &mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"root\":");
        json_node(&self.root, &mut out);
        out.push('}');
        out
    }
}

impl fmt::Display for QueryProfile {
    /// The human-readable report: a `plan class` / `estimated cost` header followed by the
    /// indented operator tree, one operator per line with its estimates (and, for
    /// `PROFILE`, its actuals) in parentheses.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan class: {}", self.plan_class)?;
        writeln!(f, "estimated cost: {:.1}", self.estimated_cost)?;
        render_node(&self.root, 0, f)
    }
}

fn render_node(node: &ProfileNode, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(indent);
    write!(
        f,
        "{pad}{} (est rows {:.1}, est cost {:.1}",
        node.operator, node.est_rows, node.est_cost
    )?;
    if let Some(c) = &node.actual {
        write!(
            f,
            "; actual rows {}, icost {}, time {:.3}ms",
            node.actual_rows().unwrap_or(0),
            c.icost,
            c.time_ns as f64 / 1e6
        )?;
        if let Some(qe) = node.q_error() {
            write!(f, ", q-err {qe:.2}")?;
        }
        // Which intersection kernels this operator's E/I calls dispatched to.
        if c.kernel_merge + c.kernel_gallop + c.kernel_block > 0 {
            write!(
                f,
                ", kernels merge/gallop/block {}/{}/{}",
                c.kernel_merge, c.kernel_gallop, c.kernel_block
            )?;
        }
    }
    writeln!(f, ")")?;
    for cand in &node.candidates {
        let c = cand.counters();
        write!(
            f,
            "{pad}  candidate {:?}: chose {} tuples, icost {}",
            cand.order, cand.chosen, c.icost
        )?;
        if c.kernel_merge + c.kernel_gallop + c.kernel_block > 0 {
            write!(
                f,
                ", kernels merge/gallop/block {}/{}/{}",
                c.kernel_merge, c.kernel_gallop, c.kernel_block
            )?;
        }
        writeln!(f)?;
    }
    let is_join = node.operator.starts_with("HASH-JOIN");
    for (i, child) in node.children.iter().enumerate() {
        if is_join {
            writeln!(f, "{pad}  {}:", if i == 0 { "build" } else { "probe" })?;
            render_node(child, indent + 2, f)?;
        } else {
            render_node(child, indent + 1, f)?;
        }
    }
    Ok(())
}

/// Render an `EXPLAIN`/`PROFILE` report as a one-column `ResultSet` (column `"plan"`, one
/// row per rendered line) — the shape `GraphflowDB::query` returns for the prefixed verbs.
pub(crate) fn result_set(profile: &QueryProfile) -> ResultSet {
    ResultSet {
        columns: vec!["plan".to_string()],
        rows: profile
            .to_string()
            .lines()
            .map(|line| vec![Some(PropValue::str(line))])
            .collect(),
        stats: profile.stats.clone().unwrap_or_default(),
    }
}

// --- tree construction ---------------------------------------------------------------------

fn operator_label(node: &PlanNode, q: &QueryGraph) -> String {
    match node {
        PlanNode::Scan(n) => format!(
            "SCAN ({})->({}) [label {}]",
            q.vertex(n.edge.src).name,
            q.vertex(n.edge.dst).name,
            n.edge.label.0
        ),
        PlanNode::Extend(n) => {
            let descs: Vec<String> = n
                .descriptors
                .iter()
                .map(|d| {
                    format!(
                        "{}.{}[{}]",
                        q.vertex(n.child.out()[d.tuple_idx]).name,
                        d.dir,
                        d.edge_label.0
                    )
                })
                .collect();
            format!(
                "EXTEND/INTERSECT -> {} using {{{}}}",
                q.vertex(n.target_vertex).name,
                descs.join(", ")
            )
        }
        PlanNode::HashJoin(n) => {
            let keys: Vec<&str> = n
                .key_vertices
                .iter()
                .map(|&v| q.vertex(v).name.as_str())
                .collect();
            format!("HASH-JOIN on [{}]", keys.join(", "))
        }
    }
}

fn estimate_node(
    node: &PlanNode,
    q: &QueryGraph,
    catalogue: &Catalogue,
    model: &CostModel,
) -> ProfileNode {
    let cost = estimate_cost(q, catalogue, model, node);
    let children = match node {
        PlanNode::Scan(_) => Vec::new(),
        PlanNode::Extend(n) => vec![estimate_node(&n.child, q, catalogue, model)],
        PlanNode::HashJoin(n) => vec![
            estimate_node(&n.build, q, catalogue, model),
            estimate_node(&n.probe, q, catalogue, model),
        ],
    };
    ProfileNode {
        operator: operator_label(node, q),
        est_rows: cost.output_cardinality,
        est_cost: cost.total(),
        actual: None,
        candidates: Vec::new(),
        children,
    }
}

/// Zip the plan tree with the executed profile tree. The two always have matching shapes —
/// the executor assembled the profile from this very plan — except that an adaptive stage
/// collapses a chain of consecutive E/I plan nodes into one `OpKind::Adaptive` profile node
/// (its `targets` name the chain, topmost last).
fn annotate(
    node: &PlanNode,
    prof: &OpProfile,
    q: &QueryGraph,
    catalogue: &Catalogue,
    model: &CostModel,
) -> ProfileNode {
    let cost = estimate_cost(q, catalogue, model, node);
    match &prof.kind {
        OpKind::Scan { .. } | OpKind::Extend { .. } | OpKind::HashJoin { .. } => {
            let children = match node {
                PlanNode::Scan(_) => Vec::new(),
                PlanNode::Extend(n) => match prof.children.first() {
                    Some(up) => vec![annotate(&n.child, up, q, catalogue, model)],
                    None => vec![estimate_node(&n.child, q, catalogue, model)],
                },
                PlanNode::HashJoin(n) => {
                    // Profile children are [probe (upstream), build]; the report's
                    // convention is [build, probe].
                    let build = match prof.children.get(1) {
                        Some(b) => annotate(&n.build, b, q, catalogue, model),
                        None => estimate_node(&n.build, q, catalogue, model),
                    };
                    let probe = match prof.children.first() {
                        Some(p) => annotate(&n.probe, p, q, catalogue, model),
                        None => estimate_node(&n.probe, q, catalogue, model),
                    };
                    vec![build, probe]
                }
            };
            ProfileNode {
                operator: operator_label(node, q),
                est_rows: cost.output_cardinality,
                est_cost: cost.total(),
                actual: Some(prof.counters.clone()),
                candidates: prof.candidates.clone(),
                children,
            }
        }
        OpKind::Adaptive { targets } => {
            // `node` is the topmost E/I of the collapsed chain; descend past the whole
            // chain to find the stage's input operator.
            let mut below = node;
            for _ in 0..targets.len() {
                match below {
                    PlanNode::Extend(n) => below = &n.child,
                    _ => break,
                }
            }
            let names: Vec<&str> = targets.iter().map(|&t| q.vertex(t).name.as_str()).collect();
            let children = match prof.children.first() {
                Some(up) => vec![annotate(below, up, q, catalogue, model)],
                None => vec![estimate_node(below, q, catalogue, model)],
            };
            ProfileNode {
                operator: format!("ADAPTIVE EXTEND/INTERSECT -> {{{}}}", names.join(", ")),
                est_rows: cost.output_cardinality,
                est_cost: cost.total(),
                actual: Some(prof.counters.clone()),
                candidates: prof.candidates.clone(),
                children,
            }
        }
    }
}

// --- JSON serialization, over the shared hand-rolled writers in `crate::json` --------------

use crate::json::{fmt_f64 as json_f64, quote as json_str};

fn json_counters(c: &OpCounters, out: &mut String) {
    out.push_str(&format!(
        "{{\"time_ns\":{},\"tuples_in\":{},\"tuples_out\":{},\"outputs\":{},\"icost\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"delta_merges\":{},\"predicate_evals\":{},\
         \"predicate_drops\":{},\"kernel_merge\":{},\"kernel_gallop\":{},\"kernel_block\":{}}}",
        c.time_ns,
        c.tuples_in,
        c.tuples_out,
        c.outputs,
        c.icost,
        c.cache_hits,
        c.cache_misses,
        c.delta_merges,
        c.predicate_evals,
        c.predicate_drops,
        c.kernel_merge,
        c.kernel_gallop,
        c.kernel_block,
    ));
}

fn json_stats(s: &RuntimeStats, out: &mut String) {
    out.push_str(&format!(
        "{{\"icost\":{},\"intermediate_tuples\":{},\"output_count\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"delta_merges\":{},\"predicate_evals\":{},\"predicate_drops\":{},\
         \"bulk_counted_extensions\":{},\"kernel_merge\":{},\"kernel_gallop\":{},\
         \"kernel_block\":{},\"heavy_splits\":{},\"hash_build_tuples\":{},\
         \"hash_probe_tuples\":{},\"plan_cache_hits\":{},\"plan_cache_misses\":{},\
         \"elapsed_ns\":{}}}",
        s.icost,
        s.intermediate_tuples,
        s.output_count,
        s.cache_hits,
        s.cache_misses,
        s.delta_merges,
        s.predicate_evals,
        s.predicate_drops,
        s.bulk_counted_extensions,
        s.kernel_merge,
        s.kernel_gallop,
        s.kernel_block,
        s.heavy_splits,
        s.hash_build_tuples,
        s.hash_probe_tuples,
        s.plan_cache_hits,
        s.plan_cache_misses,
        s.elapsed.as_nanos(),
    ));
}

fn json_node(node: &ProfileNode, out: &mut String) {
    out.push('{');
    out.push_str(&format!("\"operator\":{}", json_str(&node.operator)));
    out.push_str(&format!(",\"est_rows\":{}", json_f64(node.est_rows)));
    out.push_str(&format!(",\"est_cost\":{}", json_f64(node.est_cost)));
    out.push_str(&format!(
        ",\"q_error\":{}",
        node.q_error().map_or("null".to_string(), json_f64)
    ));
    out.push_str(",\"actual\":");
    match &node.actual {
        Some(c) => json_counters(c, out),
        None => out.push_str("null"),
    }
    out.push_str(",\"candidates\":[");
    for (i, cand) in node.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"order\":[{}],\"chosen\":{},\"counters\":",
            cand.order
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(","),
            cand.chosen,
        ));
        json_counters(&cand.counters(), out);
        out.push('}');
    }
    out.push_str("],\"children\":[");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_node(child, out);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use crate::{GraphflowDB, QueryOptions};
    use graphflow_graph::GraphBuilder;

    fn triangle_db() -> GraphflowDB {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        GraphflowDB::from_graph(b.build())
    }

    #[test]
    fn explain_tree_carries_estimates_but_no_actuals() {
        let db = triangle_db();
        let q = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        let report = q.explain();
        assert!(report.stats.is_none());
        assert!(!report.executed());
        assert_eq!(
            report.root.num_operators(),
            2,
            "SCAN + one E/I for a triangle"
        );
        assert!(report.root.actual.is_none());
        assert!(report.root.est_cost > 0.0);
        let text = report.to_string();
        assert!(text.contains("plan class:"));
        assert!(text.contains("SCAN"));
        assert!(text.contains("EXTEND/INTERSECT"));
        assert!(text.contains("est rows"));
        assert!(!text.contains("actual rows"));
    }

    #[test]
    fn profile_tree_attaches_actuals_that_sum_to_the_stats() {
        let db = triangle_db();
        let q = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        let report = q.profile(QueryOptions::new()).unwrap();
        let stats = report.stats.as_ref().unwrap();
        assert_eq!(stats.output_count, 1);
        let mut icost = 0u64;
        let mut rows = 0u64;
        fn walk(n: &crate::ProfileNode, icost: &mut u64, rows: &mut u64) {
            let c = n.actual.as_ref().expect("profiled node carries actuals");
            *icost += c.icost;
            *rows += c.tuples_out + c.outputs;
            for cand in &n.candidates {
                let cc = cand.counters();
                *icost += cc.icost;
                *rows += cc.tuples_out + cc.outputs;
            }
            for ch in &n.children {
                walk(ch, icost, rows);
            }
        }
        walk(&report.root, &mut icost, &mut rows);
        assert_eq!(icost, stats.icost);
        assert_eq!(rows, stats.intermediate_tuples + stats.output_count);
        assert!(report.to_string().contains("actual rows"));
    }

    #[test]
    fn profile_reports_estimation_quality_as_q_error() {
        let db = triangle_db();
        let q = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        // EXPLAIN has no actuals, so no q-error.
        assert!(q.explain().root.q_error().is_none());
        let report = q.profile(QueryOptions::new()).unwrap();
        fn walk(n: &crate::ProfileNode) {
            if let Some(qe) = n.q_error() {
                assert!(qe >= 1.0, "q-error is a ratio >= 1, got {qe}");
            }
            for ch in &n.children {
                walk(ch);
            }
        }
        walk(&report.root);
        assert!(
            report.to_string().contains("q-err"),
            "PROFILE renders estimated-vs-actual quality"
        );
        assert!(report.to_json().contains("\"q_error\":"));
    }

    #[test]
    fn json_report_is_well_formed_enough_to_spot_check() {
        let db = triangle_db();
        let q = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        let json = q.profile(QueryOptions::new()).unwrap().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"query\":",
            "\"plan_class\":\"WCO\"",
            "\"executed\":true",
            "\"stats\":{",
            "\"root\":{",
            "\"operator\":",
            "\"est_rows\":",
            "\"actual\":{",
            "\"children\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn explain_and_profile_verbs_route_through_query() {
        let db = triangle_db();
        let explained = db.query("EXPLAIN (a)->(b), (b)->(c), (a)->(c)").unwrap();
        assert_eq!(explained.columns(), ["plan"]);
        assert!(explained.len() >= 3);
        assert_eq!(explained.stats.output_count, 0, "EXPLAIN does not execute");
        let profiled = db.query("PROFILE (a)->(b), (b)->(c), (a)->(c)").unwrap();
        assert_eq!(profiled.stats.output_count, 1, "PROFILE executes");
        let text: Vec<String> = profiled
            .rows()
            .iter()
            .map(|r| format!("{:?}", r[0]))
            .collect();
        assert!(text.iter().any(|l| l.contains("actual rows")));
    }
}
