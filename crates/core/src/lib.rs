//! # graphflow-core
//!
//! The public facade of Graphflow-RS — the Rust reproduction of *"Optimizing Subgraph Queries by
//! Combining Binary and Worst-Case Optimal Joins"* (Mhedhbi & Salihoglu, VLDB 2019).
//!
//! [`GraphflowDB`] bundles a data graph, its subgraph catalogue and the cost-based
//! dynamic-programming optimizer behind a small API:
//!
//! ```
//! use graphflow_core::GraphflowDB;
//! use graphflow_graph::GraphBuilder;
//!
//! // Build a tiny graph: a directed triangle plus one extra edge.
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! b.add_edge(2, 3);
//! let db = GraphflowDB::from_graph(b.build());
//!
//! // Count the matches of a pattern written in the query syntax.
//! let triangles = db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap();
//! assert_eq!(triangles, 1);
//! ```
//!
//! The facade exposes every execution mode studied in the paper — fixed plans, adaptive
//! query-vertex-ordering evaluation, multi-threaded execution — plus plan inspection
//! (`EXPLAIN`-style output) and the runtime statistics (actual i-cost, intermediate match
//! counts, cache hits) the paper's experiments report.

use graphflow_catalog::{Catalogue, CatalogueConfig};
use graphflow_exec::{
    execute_adaptive, execute_parallel, execute_with_options, ExecOptions, RuntimeStats,
};
use graphflow_graph::{Graph, VertexId};
use graphflow_plan::cost::CostModel;
use graphflow_plan::dp::{DpOptimizer, PlanSpaceOptions};
use graphflow_plan::{Plan, PlanClass};
use graphflow_query::{parse_query, QueryGraph};
use std::sync::Arc;

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum Error {
    /// The query pattern could not be parsed.
    Parse(graphflow_query::ParseError),
    /// No plan exists for the query in the configured plan space.
    NoPlan,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::NoPlan => write!(f, "no plan found for the query"),
        }
    }
}

impl std::error::Error for Error {}

impl From<graphflow_query::ParseError> for Error {
    fn from(e: graphflow_query::ParseError) -> Self {
        Error::Parse(e)
    }
}

/// Per-query execution settings.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Use the adaptive executor (per-tuple query-vertex-ordering selection, Section 6).
    pub adaptive: bool,
    /// Number of worker threads (1 = serial execution).
    pub threads: usize,
    /// Enable the E/I intersection cache.
    pub intersection_cache: bool,
    /// Stop after this many results.
    pub output_limit: Option<u64>,
    /// Collect result tuples (bounded by `collect_limit`).
    pub collect_tuples: bool,
    /// Maximum number of tuples to collect.
    pub collect_limit: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            adaptive: false,
            threads: 1,
            intersection_cache: true,
            output_limit: None,
            collect_tuples: false,
            collect_limit: 1_000_000,
        }
    }
}

/// The result of running a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Number of matches.
    pub count: u64,
    /// The plan that was executed.
    pub plan: Plan,
    /// Runtime statistics (actual i-cost, intermediate matches, cache hits, elapsed time).
    pub stats: RuntimeStats,
    /// Collected matches in query-vertex order (empty unless requested).
    pub tuples: Vec<Vec<VertexId>>,
}

/// An in-memory graph database instance: graph + catalogue + optimizer + executor.
pub struct GraphflowDB {
    graph: Arc<Graph>,
    catalogue: Catalogue,
    cost_model: CostModel,
    plan_space: PlanSpaceOptions,
}

impl GraphflowDB {
    /// Create a database over an already-built graph, constructing a catalogue with the default
    /// configuration (`h = 3`, `z = 1000`).
    pub fn from_graph(graph: Graph) -> Self {
        Self::with_config(Arc::new(graph), CatalogueConfig::default())
    }

    /// Create a database over a shared graph with an explicit catalogue configuration.
    pub fn with_config(graph: Arc<Graph>, config: CatalogueConfig) -> Self {
        let catalogue = Catalogue::new(graph.clone(), config);
        GraphflowDB {
            graph,
            catalogue,
            cost_model: CostModel::default(),
            plan_space: PlanSpaceOptions::default(),
        }
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The subgraph catalogue.
    pub fn catalogue(&self) -> &Catalogue {
        &self.catalogue
    }

    /// Override the cost model used by the optimizer.
    pub fn set_cost_model(&mut self, model: CostModel) {
        self.cost_model = model;
    }

    /// Restrict the optimizer's plan space (WCO-only, BJ-only, or the default hybrid space).
    pub fn set_plan_space(&mut self, options: PlanSpaceOptions) {
        self.plan_space = options;
    }

    /// Parse a pattern written in the query syntax.
    pub fn parse(&self, pattern: &str) -> Result<QueryGraph, Error> {
        Ok(parse_query(pattern)?)
    }

    /// Pick the best plan for a parsed query.
    pub fn plan(&self, query: &QueryGraph) -> Result<Plan, Error> {
        DpOptimizer::new(&self.catalogue)
            .with_cost_model(self.cost_model)
            .with_options(self.plan_space)
            .optimize(query)
            .ok_or(Error::NoPlan)
    }

    /// `EXPLAIN`: return the chosen plan's operator tree as text, plus its class and estimated
    /// cost.
    pub fn explain(&self, pattern: &str) -> Result<String, Error> {
        let query = self.parse(pattern)?;
        let plan = self.plan(&query)?;
        Ok(format!(
            "plan class: {}\nestimated cost: {:.1}\n{}",
            plan.class(),
            plan.estimated_cost,
            plan.explain()
        ))
    }

    /// Count the matches of a pattern with default options.
    pub fn count(&self, pattern: &str) -> Result<u64, Error> {
        Ok(self.run(pattern, QueryOptions::default())?.count)
    }

    /// Run a pattern with explicit options.
    pub fn run(&self, pattern: &str, options: QueryOptions) -> Result<QueryResult, Error> {
        let query = self.parse(pattern)?;
        self.run_query(&query, options)
    }

    /// Run an already-parsed query with explicit options.
    pub fn run_query(&self, query: &QueryGraph, options: QueryOptions) -> Result<QueryResult, Error> {
        let plan = self.plan(query)?;
        Ok(self.run_plan(&plan, options))
    }

    /// Execute a specific plan (useful for plan-spectrum style experimentation).
    pub fn run_plan(&self, plan: &Plan, options: QueryOptions) -> QueryResult {
        let exec_options = ExecOptions {
            use_intersection_cache: options.intersection_cache,
            output_limit: options.output_limit,
            collect_tuples: options.collect_tuples,
            collect_limit: options.collect_limit,
        };
        let output = if options.threads > 1 {
            execute_parallel(&self.graph, plan, exec_options, options.threads)
        } else if options.adaptive {
            execute_adaptive(&self.graph, &self.catalogue, plan, exec_options)
        } else {
            execute_with_options(&self.graph, plan, exec_options)
        };
        QueryResult {
            count: output.count,
            plan: plan.clone(),
            stats: output.stats,
            tuples: output.tuples,
        }
    }

    /// Convenience: the class (WCO / BJ / hybrid) of the plan chosen for a pattern.
    pub fn plan_class(&self, pattern: &str) -> Result<PlanClass, Error> {
        let query = self.parse(pattern)?;
        Ok(self.plan(&query)?.class())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphflow_graph::GraphBuilder;
    use graphflow_query::patterns;

    fn db() -> GraphflowDB {
        let edges = graphflow_graph::generator::powerlaw_cluster(400, 4, 0.5, 77);
        let mut b = GraphBuilder::new();
        b.add_edges(edges);
        GraphflowDB::from_graph(b.build())
    }

    #[test]
    fn count_matches_reference() {
        let db = db();
        let q = patterns::asymmetric_triangle();
        let expected = graphflow_catalog::count_matches(db.graph(), &q);
        assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), expected);
    }

    #[test]
    fn execution_modes_agree() {
        let db = db();
        let q = patterns::diamond_x();
        let expected = graphflow_catalog::count_matches(db.graph(), &q);
        let fixed = db.run_query(&q, QueryOptions::default()).unwrap();
        let adaptive = db
            .run_query(
                &q,
                QueryOptions {
                    adaptive: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let parallel = db
            .run_query(
                &q,
                QueryOptions {
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(fixed.count, expected);
        assert_eq!(adaptive.count, expected);
        assert_eq!(parallel.count, expected);
        assert!(fixed.stats.icost > 0);
    }

    #[test]
    fn explain_mentions_operators() {
        let db = db();
        let text = db.explain("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        assert!(text.contains("SCAN"));
        assert!(text.contains("EXTEND/INTERSECT"));
        assert!(text.contains("plan class: WCO"));
    }

    #[test]
    fn errors_are_reported() {
        let db = db();
        assert!(matches!(db.count("(a)->"), Err(Error::Parse(_))));
        let err = db.count("(a)->").unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn plan_space_restrictions_apply() {
        let mut db = db();
        db.set_plan_space(PlanSpaceOptions::wco_only());
        let class = db
            .plan_class("(a)->(b), (b)->(c), (a)->(c), (c)->(d), (b)->(d)")
            .unwrap();
        assert_eq!(class, PlanClass::Wco);
    }

    #[test]
    fn collected_tuples_respect_limit() {
        let db = db();
        let result = db
            .run(
                "(a)->(b), (b)->(c), (a)->(c)",
                QueryOptions {
                    collect_tuples: true,
                    collect_limit: 7,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(result.tuples.len() <= 7);
        assert!(result.count >= result.tuples.len() as u64);
    }
}
