//! # graphflow-core
//!
//! The public facade of Graphflow-RS — the Rust reproduction of *"Optimizing Subgraph Queries by
//! Combining Binary and Worst-Case Optimal Joins"* (Mhedhbi & Salihoglu, VLDB 2019).
//!
//! [`GraphflowDB`] bundles a data graph, its subgraph catalogue and the cost-based
//! dynamic-programming optimizer behind an API built for *serving*: the expensive front half of
//! a query (parse → canonicalize → optimize) runs **once per distinct query shape** and is
//! amortized across every later execution, and results can be **streamed** instead of
//! materialised, so a query with a hundred million matches runs in constant memory.
//!
//! ## Prepared queries and the plan cache
//!
//! [`GraphflowDB::prepare`] parses, canonicalizes and plans a pattern once, returning a
//! [`PreparedQuery`] that can be rerun with different options. Plans live in an internal LRU
//! cache keyed on the *canonical* form of the query graph, so preparing (or just
//! [`run`](GraphflowDB::run)ning) an isomorphic rewriting of an earlier pattern — same shape,
//! different vertex names or clause order — skips the optimizer entirely:
//!
//! ```
//! use graphflow_core::GraphflowDB;
//! use graphflow_graph::GraphBuilder;
//!
//! // A tiny graph: a directed triangle plus one extra edge.
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! b.add_edge(2, 3);
//! let db = GraphflowDB::from_graph(b.build());
//!
//! // Prepare once (optimizer runs), execute many times (optimizer skipped).
//! let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
//! assert_eq!(triangles.count().unwrap(), 1);
//! assert_eq!(triangles.count().unwrap(), 1);
//!
//! // An isomorphic rewriting is a plan-cache hit: no second optimizer run.
//! let rewritten = db.prepare("(x)->(z), (y)->(z), (x)->(y)").unwrap();
//! assert!(rewritten.was_cached());
//! assert_eq!(db.plan_cache_stats().misses, 1);
//! ```
//!
//! ## Streaming results
//!
//! Executors deliver matches through a [`MatchSink`] instead of buffering them:
//! [`CountingSink`] counts, [`CollectingSink`] keeps up to a cap (this is what backs
//! [`QueryResult::tuples`]), [`LimitSink`] stops execution after N matches, and
//! [`CallbackSink`] forwards each match to a closure:
//!
//! ```
//! # use graphflow_core::{CallbackSink, GraphflowDB, QueryOptions};
//! # use graphflow_graph::GraphBuilder;
//! # let mut b = GraphBuilder::new();
//! # b.add_edge(0, 1); b.add_edge(1, 2); b.add_edge(0, 2); b.add_edge(2, 3);
//! # let db = GraphflowDB::from_graph(b.build());
//! let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
//! let mut hubs = Vec::new();
//! let mut sink = CallbackSink::new(|t: &[u32]| {
//!     hubs.push(t[0]); // vertex matched to (a)
//!     true             // keep streaming
//! });
//! triangles.run_with_sink(QueryOptions::new(), &mut sink).unwrap();
//! drop(sink);
//! assert_eq!(hubs, vec![0]);
//! ```
//!
//! ## Concurrency: one shareable handle, write transactions, lock-free reads
//!
//! [`GraphflowDB`] is a cheap [`Clone`]-able, `Send + Sync` **handle**: clone it (or wrap it in
//! an `Arc` — a clone *is* two `Arc` bumps) and hand it to as many threads as you like. Reads
//! pin an immutable [`GraphSnapshot`] of the current epoch and then never touch a lock again;
//! writes go through a [`WriteTxn`] ([`begin_write`](GraphflowDB::begin_write) → staged updates
//! → [`commit`](WriteTxn::commit)), which stages on a private copy-on-write snapshot and
//! publishes **one new epoch atomically** — writers never block readers, and a reader sees
//! either all of a transaction or none of it:
//!
//! ```
//! use graphflow_core::GraphflowDB;
//! use graphflow_graph::{EdgeLabel, GraphBuilder};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! let db = GraphflowDB::from_graph(b.build());
//! let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
//!
//! // The same owned prepared query executes from any thread through cloned handles.
//! let worker = std::thread::spawn({
//!     let triangles = triangles.clone();
//!     move || triangles.count().unwrap()
//! });
//! assert_eq!(worker.join().unwrap(), 0);
//!
//! // A write transaction publishes atomically; the closing edge appears to every
//! // later read at once.
//! let mut txn = db.begin_write();
//! txn.insert_edge(0, 2, EdgeLabel(0));
//! txn.commit();
//! assert_eq!(triangles.count().unwrap(), 1);
//! ```
//!
//! ## Dynamic updates
//!
//! The graph is live: edges and vertices can be inserted and deleted between (and logically,
//! under, thanks to snapshot isolation) queries. Updates land in a delta store layered over the
//! base CSR; queries run against an immutable [`GraphSnapshot`] of one delta epoch,
//! and [`compact`](GraphflowDB::compact) (explicit, or automatic past a threshold) folds the
//! deltas back into a fresh CSR. The single-call convenience wrappers below are each a
//! one-update [`WriteTxn`]:
//!
//! ```
//! use graphflow_core::GraphflowDB;
//! use graphflow_graph::{EdgeLabel, GraphView as _, GraphBuilder};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! let db = GraphflowDB::from_graph(b.build());
//! assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), 0);
//!
//! // Close the triangle; the same prepared shape now matches once.
//! assert!(db.insert_edge(0, 2, EdgeLabel(0)));
//! assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), 1);
//!
//! // A snapshot taken now is isolated from later mutations.
//! let snap = db.snapshot();
//! db.delete_edge(0, 2, EdgeLabel(0));
//! assert!(snap.has_edge(0, 2, EdgeLabel(0)));
//! assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), 0);
//!
//! // Compaction is results-neutral.
//! db.compact();
//! assert_eq!(db.count("(a)->(b), (b)->(c)").unwrap(), 1);
//! ```
//!
//! The catalogue keeps its exact per-label counts current on every update and lazily resamples
//! drifted entries, and the plan cache keys on `(canonical query, statistics version)`, so once
//! updates cross the configured staleness threshold
//! ([`staleness_threshold`](GraphflowDBBuilder::staleness_threshold)) stale plans are
//! re-optimized instead of reused ([`PlanCacheStats::invalidations`] counts these).
//!
//! ## Typed properties and predicate pushdown
//!
//! Vertices and edges carry **typed properties** (int, float, bool, string — see
//! [`PropValue`]), written through the
//! [`GraphBuilder`], the loader's `key=value` columns, or the
//! live-update APIs ([`set_vertex_prop`](GraphflowDB::set_vertex_prop),
//! [`set_edge_prop`](GraphflowDB::set_edge_prop),
//! [`insert_vertex_with_props`](GraphflowDB::insert_vertex_with_props), property
//! [`Update`]s in [`apply_batch`](GraphflowDB::apply_batch)). Queries filter on
//! them with a `WHERE` clause of comparisons joined by `AND`; predicates are **pushed into the
//! compiled pipeline** — evaluated at the SCAN, during E/I extension, and while materialising
//! hash-join build sides, as early as the bound variables allow — rather than post-filtering
//! full matches, and the optimizer folds per-predicate selectivity into its cost model. The
//! plan cache canonicalizes predicate *constants* away, so `age > 30` and `age > 50` over the
//! same shape share one optimized plan:
//!
//! ```
//! use graphflow_core::GraphflowDB;
//! use graphflow_graph::{GraphBuilder, PropValue};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! for v in 0..3 {
//!     b.set_vertex_prop(v, "age", PropValue::Int(25 + 10 * v as i64)).unwrap();
//! }
//! b.set_edge_prop(0, 1, graphflow_graph::EdgeLabel(0), "weight", PropValue::Float(0.8))
//!     .unwrap();
//! let db = GraphflowDB::from_graph(b.build());
//!
//! let triangle = "(a)-[e]->(b), (b)->(c), (a)->(c)";
//! assert_eq!(
//!     db.count(&format!("{triangle} WHERE a.age <= 30 AND e.weight > 0.5")).unwrap(),
//!     1
//! );
//! assert_eq!(
//!     db.count(&format!("{triangle} WHERE a.age <= 20 AND e.weight > 0.1")).unwrap(),
//!     0
//! );
//! // Structurally equal predicates share one plan: only the constants differ.
//! assert_eq!(db.plan_cache_stats().misses, 1);
//! assert_eq!(db.plan_cache_stats().hits, 1);
//! ```
//!
//! ## Execution options, deadlines and cancellation
//!
//! [`QueryOptions`] is a fluent builder covering every execution mode studied in the paper —
//! fixed plans, adaptive query-vertex-ordering evaluation
//! ([`adaptive`](QueryOptions::adaptive)), multi-threaded execution
//! ([`threads`](QueryOptions::threads)) — plus the intersection cache toggle, output limits,
//! tuple collection, wall-clock deadlines ([`timeout`](QueryOptions::timeout), surfaced as
//! [`Error::Timeout`]) and cooperative cancellation
//! ([`cancel_token`](QueryOptions::cancel_token), surfaced as [`Error::Cancelled`];
//! [`PreparedQuery::execute_handle`] packages the pattern as a [`QueryHandle`] that any thread
//! can cancel). Plan inspection (`EXPLAIN`-style output) and the runtime statistics the
//! paper's experiments report (actual i-cost, intermediate match counts, cache hits) are
//! available through [`GraphflowDB::explain`] / [`PreparedQuery::explain`] and
//! [`QueryResult::stats`].

#![warn(missing_docs)]

use graphflow_catalog::{Catalogue, CatalogueConfig};
use graphflow_exec::{
    execute_adaptive_with_sink, execute_parallel_with_sink, execute_with_sink, ExecOptions,
};
use graphflow_graph::loader::LoadError;
use graphflow_graph::{
    EdgeLabel, Graph, GraphBuilder, GraphView, PropError, PropValue, Snapshot, Update, VertexId,
    VertexLabel,
};
use graphflow_plan::cost::CostModel;
use graphflow_plan::dp::{DpOptimizer, PlanSpaceOptions};
use graphflow_plan::{Plan, PlanClass, PlanHandle};
use graphflow_query::{
    canonical_form, parse_query, split_mode, CanonicalCode, PredTarget, Predicate, QueryGraph,
    QueryMode,
};
use graphflow_storage::{PersistedCounts, StorageError, Store};
use parking_lot::{Mutex, RwLock};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod explain;
pub mod json;
mod metrics;
mod options;
mod plan_cache;
mod prepared;
mod results;
mod txn;

pub use explain::{ProfileNode, QueryProfile};
pub use graphflow_exec::{
    CallbackSink, CancellationToken, CandidateProfile, CollectingSink, CountingSink, LimitSink,
    MatchSink, OpCounters, OpKind, OpProfile, Row, RuntimeStats, Value,
};
pub use graphflow_graph::{Snapshot as GraphSnapshot, Update as GraphUpdate};
pub use graphflow_query::returns::ReturnClause;
pub use graphflow_storage::Durability;
pub use metrics::{
    render_histogram_header, render_histogram_series, LatencyHistogram, LatencyRecorder, Metrics,
    SlowQuery, SLOW_LOG_CAPACITY,
};
pub use options::QueryOptions;
pub use plan_cache::PlanCacheStats;
pub use prepared::{PreparedQuery, QueryHandle};
pub use results::ResultSet;
pub use txn::WriteTxn;

use metrics::{MetricsRegistry, SlowLog};
use plan_cache::PlanCache;
use prepared::RemapSink;

/// Default number of plans kept in the facade's LRU plan cache.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// The unified error type of the facade, covering parsing, planning and execution.
///
/// Underlying causes are reachable through [`std::error::Error::source`]:
///
/// ```
/// use std::error::Error as _;
/// use graphflow_core::{Error, GraphflowDB};
/// use graphflow_graph::GraphBuilder;
/// let db = GraphflowDB::from_graph(GraphBuilder::new().build());
/// let err = db.count("(a)->").unwrap_err();
/// assert!(matches!(err, Error::Parse(_)));
/// assert!(err.source().is_some()); // the underlying ParseError, with byte position
/// ```
#[derive(Debug)]
pub enum Error {
    /// The query pattern could not be parsed; the underlying
    /// [`ParseError`](graphflow_query::ParseError) (with its byte position) is the
    /// [`source`](std::error::Error::source).
    Parse(graphflow_query::ParseError),
    /// No plan exists for the query in the configured plan space.
    NoPlan,
    /// The requested combination of [`QueryOptions`] is not executable (for example
    /// `adaptive(true)` together with `threads(4)`).
    InvalidOptions(String),
    /// A property write failed (type mismatch against an existing column, or the addressed
    /// vertex/edge does not exist); the underlying [`PropError`] is the
    /// [`source`](std::error::Error::source).
    Property(PropError),
    /// The query was cancelled through its [`CancellationToken`] (attached with
    /// [`QueryOptions::cancel_token`] or created by [`PreparedQuery::execute_handle`]) before
    /// it completed. Materialising entry points discard their partial results; a
    /// sink-streaming run ([`run_with_sink`](GraphflowDB::run_with_sink)) has already
    /// delivered the matches found before the cancellation to the caller's sink.
    Cancelled,
    /// The query ran past its wall-clock deadline ([`QueryOptions::timeout`]) and was
    /// stopped. Materialising entry points discard their partial results; a sink-streaming
    /// run has already delivered the matches found before the deadline to the caller's sink.
    Timeout,
    /// The durability subsystem failed: a write-ahead-log append, snapshot write, or recovery
    /// read hit an I/O error or found a corrupt/incompatible file. The underlying
    /// [`StorageError`] (which itself chains down to the OS error where one exists) is the
    /// [`source`](std::error::Error::source).
    Storage(StorageError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The underlying ParseError (with position and reason) is exposed through
            // `source()`, so chain-aware reporters print it exactly once; Display keeps to
            // the high-level fact per the API guidelines.
            Error::Parse(_) => write!(f, "failed to parse query pattern"),
            Error::NoPlan => write!(
                f,
                "no plan found for the query in the configured plan space"
            ),
            Error::InvalidOptions(msg) => write!(f, "invalid query options: {msg}"),
            Error::Property(_) => write!(f, "property write rejected"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Timeout => write!(f, "query timed out"),
            Error::Storage(_) => write!(f, "durable storage operation failed"),
        }
    }
}

impl Error {
    /// A stable machine-readable error code, used by the HTTP wire protocol (and anything
    /// else that must dispatch on the error without string-matching `Display` output).
    pub fn code(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse_error",
            Error::NoPlan => "no_plan",
            Error::InvalidOptions(_) => "invalid_options",
            Error::Property(_) => "property_error",
            Error::Cancelled => "cancelled",
            Error::Timeout => "timeout",
            Error::Storage(_) => "storage_error",
        }
    }

    /// Serialize the error as a structured JSON object:
    /// `{"error": {"code": "...", "message": "...", "chain": ["...", ...]}}`, where `chain`
    /// walks the [`source`](std::error::Error::source) links — so a parse failure carries the
    /// parser's actionable byte-position text, not just the facade's one-line summary.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"error\":{\"code\":");
        out.push_str(&crate::json::quote(self.code()));
        out.push_str(",\"message\":");
        out.push_str(&crate::json::quote(&self.to_string()));
        out.push_str(",\"chain\":[");
        let mut source = std::error::Error::source(self);
        let mut first = true;
        while let Some(cause) = source {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&crate::json::quote(&cause.to_string()));
            source = cause.source();
        }
        out.push_str("]}}");
        out
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Property(e) => Some(e),
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<graphflow_query::ParseError> for Error {
    fn from(e: graphflow_query::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<PropError> for Error {
    fn from(e: PropError) -> Self {
        Error::Property(e)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<LoadError> for Error {
    fn from(e: LoadError) -> Self {
        Error::Storage(StorageError::Load(e))
    }
}

/// The result of running a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Number of matches.
    pub count: u64,
    /// The plan that was executed (shared with the plan cache — cloning is a pointer copy).
    pub plan: PlanHandle,
    /// Runtime statistics (actual i-cost, intermediate matches, cache hits, plan-cache
    /// hit/miss, elapsed time).
    pub stats: RuntimeStats,
    /// Collected matches in query-vertex order (empty unless
    /// [`QueryOptions::collect_tuples`] was requested). Backed by a [`CollectingSink`]; for
    /// unbounded result sets stream through [`GraphflowDB::run_with_sink`] instead.
    pub tuples: Vec<Vec<VertexId>>,
}

/// Configures and builds a [`GraphflowDB`].
///
/// ```
/// use graphflow_core::GraphflowDB;
/// use graphflow_catalog::CatalogueConfig;
/// use graphflow_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// let db = GraphflowDB::builder(b.build())
///     .catalogue_config(CatalogueConfig { h: 2, ..Default::default() })
///     .plan_cache_capacity(16)
///     .build();
/// assert_eq!(db.plan_cache_stats().capacity, 16);
/// ```
pub struct GraphflowDBBuilder {
    graph: Arc<Graph>,
    catalogue_config: CatalogueConfig,
    cost_model: CostModel,
    plan_space: PlanSpaceOptions,
    plan_cache_capacity: usize,
    staleness_threshold: Option<u64>,
    compact_threshold: Option<usize>,
    slow_query_threshold: Option<Duration>,
    data_dir: Option<PathBuf>,
    durability: Durability,
}

impl GraphflowDBBuilder {
    /// Catalogue construction parameters (`h`, `z`, sampling caps; paper Section 5).
    pub fn catalogue_config(mut self, config: CatalogueConfig) -> Self {
        self.catalogue_config = config;
        self
    }

    /// The cost model used by the optimizer (paper Sections 3.3–4.2).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Restrict the optimizer's plan space (WCO-only, BJ-only, or the default hybrid space).
    pub fn plan_space(mut self, options: PlanSpaceOptions) -> Self {
        self.plan_space = options;
        self
    }

    /// Number of plans kept in the LRU plan cache (0 disables caching; default
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`]).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Number of graph updates after which the database bumps its statistics version, forcing
    /// cached plans to be re-optimized against the drifted graph instead of silently reusing
    /// dead statistics. Defaults to the catalogue's
    /// [`refresh_after`](graphflow_catalog::CatalogueConfig::refresh_after), so plans and
    /// sampled statistics drift out together.
    pub fn staleness_threshold(mut self, updates: u64) -> Self {
        self.staleness_threshold = Some(updates.max(1));
        self
    }

    /// Number of pending delta entries (inserted + deleted edges + new vertices) that triggers
    /// an automatic [`compact`](GraphflowDB::compact) after an update. Defaults to
    /// `max(4096, base edges / 2)`; `usize::MAX` disables automatic compaction.
    pub fn compact_threshold(mut self, pending: usize) -> Self {
        self.compact_threshold = Some(pending.max(1));
        self
    }

    /// Record every query whose wall-clock latency reaches `threshold` in a bounded
    /// in-memory ring buffer ([`SLOW_LOG_CAPACITY`] entries, oldest dropped first), readable
    /// through [`GraphflowDB::slow_queries`]. Each record carries the executed query's
    /// canonical text, its latency, its actual i-cost and the plan's structural fingerprint.
    /// Off by default — without a threshold the query path pays nothing.
    pub fn slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow_query_threshold = Some(threshold);
        self
    }

    /// Persist the database in `dir`: every committed [`WriteTxn`] is write-ahead logged
    /// before its epoch is published, compactions double as binary-snapshot checkpoints, and
    /// reopening the directory ([`open`](GraphflowDBBuilder::open) or [`GraphflowDB::open`])
    /// recovers the last durably committed epoch. When the directory already holds data, that
    /// data wins over the builder's graph; a fresh directory is seeded with the builder's
    /// graph as its first snapshot.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// How much durability a commit buys before it returns (default
    /// [`Durability::Fsync`]). Only meaningful together with
    /// [`data_dir`](GraphflowDBBuilder::data_dir).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Build the database (constructs the catalogue; entries are sampled lazily).
    ///
    /// Infallible spelling of [`open`](GraphflowDBBuilder::open): **panics** on a storage
    /// error when a [`data_dir`](GraphflowDBBuilder::data_dir) is configured (without one no
    /// storage is touched and no panic is possible).
    pub fn build(self) -> GraphflowDB {
        match self.open() {
            Ok(db) => db,
            Err(e) => panic!("failed to open database directory: {e} ({e:?})"),
        }
    }

    /// Build the database, opening (and if necessary creating and seeding) the configured
    /// [`data_dir`](GraphflowDBBuilder::data_dir) and running crash recovery: the newest
    /// valid snapshot is loaded, write-ahead-log records past it are replayed in commit
    /// order, a torn WAL tail (crash mid-append) is truncated, and the database comes up at
    /// the last durably committed epoch.
    pub fn open(self) -> Result<GraphflowDB, Error> {
        let Some(dir) = self.data_dir.clone() else {
            let snapshot = Snapshot::new(self.graph.clone());
            let catalogue = Catalogue::for_snapshot(snapshot.clone(), self.catalogue_config);
            return Ok(self.assemble(snapshot, catalogue, None));
        };
        let load_started = Instant::now();
        let (mut store, recovered) = Store::open(&dir, self.durability)?;
        // An existing snapshot wins over the builder's graph: the directory's contents are
        // the durable truth, the builder graph only seeds a fresh directory.
        let had_snapshot = recovered.snapshot.is_some();
        let (base, base_epoch, counts) = match recovered.snapshot {
            Some(s) => (Arc::new(s.graph), s.epoch, Some(s.counts)),
            None => (self.graph.clone(), 0, None),
        };
        let mut snap = Snapshot::new(base);
        snap.set_version(base_epoch);
        let mut catalogue = match &counts {
            Some(c) => Catalogue::for_snapshot_with_counts(
                snap.clone(),
                self.catalogue_config,
                c.vertex_counts.iter().map(|&(l, n)| (VertexLabel(l), n)),
                c.edge_counts
                    .iter()
                    .map(|&(el, sl, dl, n)| ((EdgeLabel(el), VertexLabel(sl), VertexLabel(dl)), n)),
            ),
            None => Catalogue::for_snapshot(snap.clone(), self.catalogue_config),
        };
        for batch in &recovered.batches {
            replay_batch(&mut snap, &mut catalogue, &batch.updates);
            // Pin the replayed state to the epoch the WAL recorded, so version numbers stay
            // monotone across restarts regardless of how replay counted its mutations.
            snap.set_version(batch.epoch);
        }
        if !recovered.batches.is_empty() {
            catalogue.set_snapshot(snap.clone());
        }
        if !had_snapshot {
            // First open of this directory: fold any replayed updates into the base CSR and
            // install it as the initial snapshot, so recovery always has a base image and the
            // WAL can start empty.
            if snap.has_pending_deltas() {
                snap.compact();
                catalogue.set_snapshot(snap.clone());
            }
            store.checkpoint(snap.base(), snap.version(), &persisted_counts(&catalogue))?;
        }
        let db = self.assemble(snap, catalogue, Some(store));
        db.shared.metrics.snapshot_load_ns.store(
            load_started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        Ok(db)
    }

    fn assemble(
        self,
        snapshot: Snapshot,
        catalogue: Catalogue,
        storage: Option<Store>,
    ) -> GraphflowDB {
        let staleness_threshold = self
            .staleness_threshold
            .unwrap_or_else(|| self.catalogue_config.refresh_after.max(1));
        let compact_threshold = self
            .compact_threshold
            .unwrap_or_else(|| (snapshot.base().num_edges() / 2).max(4096));
        GraphflowDB {
            shared: Arc::new(DbShared {
                stats_version: AtomicU64::new(snapshot.version()),
                current: RwLock::new(snapshot),
                catalogue: RwLock::new(Arc::new(catalogue)),
                config_epoch: AtomicU64::new(0),
                cost_model: RwLock::new(self.cost_model),
                plan_space: RwLock::new(self.plan_space),
                plan_cache: PlanCache::new(self.plan_cache_capacity),
                writer: Mutex::new(WriterState {
                    updates_since_stats: 0,
                }),
                staleness_threshold,
                compact_threshold,
                metrics: MetricsRegistry::default(),
                slow_log: self.slow_query_threshold.map(SlowLog::new),
                storage: storage.map(Mutex::new),
            }),
        }
    }
}

/// Replay one recovered WAL batch onto `snap`, mirroring the catalogue maintenance a live
/// [`WriteTxn`] would have recorded for the same effective updates.
fn replay_batch(snap: &mut Snapshot, catalogue: &mut Catalogue, updates: &[Update]) {
    for u in updates {
        match u {
            Update::InsertVertex { label } => {
                snap.insert_vertex(*label);
                catalogue.record_vertex_insert(*label);
            }
            Update::InsertEdge { src, dst, label } => {
                let created = snap.ensure_vertex((*src).max(*dst));
                for _ in 0..created {
                    catalogue.record_vertex_insert(VertexLabel(0));
                }
                if snap.insert_edge(*src, *dst, *label) {
                    catalogue.record_edge_insert(
                        *label,
                        snap.vertex_label(*src),
                        snap.vertex_label(*dst),
                    );
                }
            }
            Update::DeleteEdge { src, dst, label } => {
                let (sl, dl) = (snap.vertex_label(*src), snap.vertex_label(*dst));
                if snap.delete_edge(*src, *dst, *label) {
                    catalogue.record_edge_delete(*label, sl, dl);
                }
            }
            // Property writes carry no catalogue maintenance; the WAL only holds writes
            // that passed their type/existence checks, so replaying them cannot fail.
            prop => {
                snap.apply_update(prop);
            }
        }
    }
}

/// Export the catalogue's exact counts in the storage crate's id-level wire shape.
pub(crate) fn persisted_counts(catalogue: &Catalogue) -> PersistedCounts {
    let (vertex_counts, edge_counts) = catalogue.exact_counts();
    PersistedCounts {
        vertex_counts: vertex_counts.into_iter().map(|(l, n)| (l.0, n)).collect(),
        edge_counts: edge_counts
            .into_iter()
            .map(|((el, sl, dl), n)| (el.0, sl.0, dl.0, n))
            .collect(),
    }
}

/// An in-memory graph database instance: graph + catalogue + optimizer + plan cache + executor.
///
/// `GraphflowDB` is a cheap **handle** (`Clone` is two `Arc` bumps) over shared, internally
/// synchronized state, and is `Send + Sync`: clone it across threads, or share one instance
/// behind an `Arc` — both spellings address the same database. Reads pin an immutable
/// [`Snapshot`] of the current epoch under a momentary read lock and then run lock-free;
/// writes are serialized through [`WriteTxn`]s that publish one new epoch atomically, so
/// **writers never block readers**.
///
/// The graph is **dynamic**: [`insert_vertex`](GraphflowDB::insert_vertex),
/// [`insert_edge`](GraphflowDB::insert_edge), [`delete_edge`](GraphflowDB::delete_edge) and
/// [`apply_batch`](GraphflowDB::apply_batch) are one-update write transactions over a delta
/// store layered over the base CSR ([`begin_write`](GraphflowDB::begin_write) batches many
/// updates into one atomic epoch), while queries always run against an immutable [`Snapshot`]
/// of one epoch. Snapshots handed out by [`snapshot`](GraphflowDB::snapshot) are isolated from
/// later mutations (copy-on-write), and [`compact`](GraphflowDB::compact) — called explicitly
/// or triggered by the configured threshold — folds the deltas back into a fresh CSR without
/// changing results.
#[derive(Clone)]
pub struct GraphflowDB {
    pub(crate) shared: Arc<DbShared>,
}

/// The shared, internally synchronized state behind every clone of a [`GraphflowDB`] handle.
pub(crate) struct DbShared {
    /// The current published epoch; readers clone it under a brief read lock, the single
    /// writer swaps in a new one at commit.
    pub(crate) current: RwLock<Snapshot>,
    /// Shared copy-on-write: readers clone the `Arc` under a momentary read lock and then
    /// hold no lock at all (planning and the adaptive executor run against their own
    /// reference); commits mutate through `Arc::make_mut` under the write lock.
    pub(crate) catalogue: RwLock<Arc<Catalogue>>,
    /// Bumped by `set_cost_model` / `set_plan_space`; part of the plan-cache version key, so
    /// a plan whose optimization straddled a configuration change can never be served from
    /// the cache afterwards.
    pub(crate) config_epoch: AtomicU64,
    pub(crate) cost_model: RwLock<CostModel>,
    pub(crate) plan_space: RwLock<PlanSpaceOptions>,
    /// Already thread-safe internally (atomics + its own mutex).
    pub(crate) plan_cache: PlanCache,
    /// Snapshot version at which cached plans were last considered fresh; part of the plan
    /// cache key, bumped by commits when the staleness clock crosses `staleness_threshold`.
    pub(crate) stats_version: AtomicU64,
    /// Serializes write transactions and guards the staleness clock.
    pub(crate) writer: Mutex<WriterState>,
    pub(crate) staleness_threshold: u64,
    pub(crate) compact_threshold: usize,
    /// The db-wide metrics registry: lock-free atomic counters accrued on the query and
    /// commit paths, snapshotted by [`GraphflowDB::metrics`].
    pub(crate) metrics: MetricsRegistry,
    /// The slow-query ring buffer; `Some` only when a
    /// [`slow_query_threshold`](GraphflowDBBuilder::slow_query_threshold) was configured.
    pub(crate) slow_log: Option<SlowLog>,
    /// The durability subsystem: `Some` when the database was opened over a data directory
    /// ([`GraphflowDBBuilder::data_dir`] / [`GraphflowDB::open`]), `None` for a purely
    /// in-memory database. Locked briefly by commits (WAL append) and checkpoints; never on
    /// the read path.
    pub(crate) storage: Option<Mutex<Store>>,
}

/// Writer-only bookkeeping, guarded by the writer mutex a [`WriteTxn`] holds.
pub(crate) struct WriterState {
    pub(crate) updates_since_stats: u64,
}

impl GraphflowDB {
    /// Start configuring a database over a graph (see [`GraphflowDBBuilder`]).
    pub fn builder(graph: impl Into<Arc<Graph>>) -> GraphflowDBBuilder {
        GraphflowDBBuilder {
            graph: graph.into(),
            catalogue_config: CatalogueConfig::default(),
            cost_model: CostModel::default(),
            plan_space: PlanSpaceOptions::default(),
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            staleness_threshold: None,
            compact_threshold: None,
            slow_query_threshold: None,
            data_dir: None,
            durability: Durability::default(),
        }
    }

    /// Open (creating if needed) a persistent database in `dir` with all-default
    /// configuration, running crash recovery: load the newest valid snapshot, replay the
    /// write-ahead log past it, truncate any torn tail, and come up at the last durably
    /// committed epoch. Equivalent to
    /// `GraphflowDB::builder(empty graph).data_dir(dir).open()` — see
    /// [`GraphflowDBBuilder::open`] for the recovery protocol and
    /// [`GraphflowDBBuilder::data_dir`] for how existing data interacts with a seed graph.
    pub fn open(dir: impl Into<PathBuf>) -> Result<GraphflowDB, Error> {
        Self::builder(GraphBuilder::new().build())
            .data_dir(dir)
            .open()
    }

    /// Create a database over an already-built graph with all-default configuration
    /// (catalogue `h = 3`, `z = 1000`; plan cache of [`DEFAULT_PLAN_CACHE_CAPACITY`]).
    pub fn from_graph(graph: Graph) -> Self {
        Self::builder(graph).build()
    }

    /// Create a database over a shared graph with an explicit catalogue configuration.
    pub fn with_config(graph: Arc<Graph>, config: CatalogueConfig) -> Self {
        Self::builder(graph).catalogue_config(config).build()
    }

    /// The base CSR of the current snapshot. Pending deltas are *not* visible through this
    /// handle — use [`snapshot`](GraphflowDB::snapshot) for the live graph (the two coincide
    /// whenever no updates are pending, e.g. right after construction or a compaction).
    pub fn graph(&self) -> Arc<Graph> {
        self.shared.current.read().base().clone()
    }

    /// An isolated snapshot of the current graph epoch (base CSR + pending deltas). Cheap to
    /// clone and unaffected by any mutation committed to the database afterwards; implements
    /// [`GraphView`], so the `graphflow-exec` entry points and
    /// [`graphflow_catalog::count_matches`] accept it directly. This is the read path's only
    /// synchronization: a momentary read lock around two `Arc` bumps.
    pub fn snapshot(&self) -> Snapshot {
        self.shared.current.read().clone()
    }

    /// The number of mutations committed since the database was built (compaction does not
    /// advance it: the logical graph is unchanged).
    pub fn graph_version(&self) -> u64 {
        self.shared.current.read().version()
    }

    /// The statistics version cached plans are currently keyed under; it trails
    /// [`graph_version`](GraphflowDB::graph_version) by at most the staleness threshold.
    pub fn stats_version(&self) -> u64 {
        self.shared.stats_version.load(Ordering::Acquire)
    }

    /// The plan cache's full version key: statistics version plus the optimizer-configuration
    /// epoch, so plans are invalidated by graph drift *and* by `set_cost_model` /
    /// `set_plan_space` — even when the change lands while an optimizer run is in flight.
    fn cache_version(&self) -> (u64, u64) {
        (
            self.stats_version(),
            self.shared.config_epoch.load(Ordering::Acquire),
        )
    }

    /// The subgraph catalogue: a cheap shared reference to the current revision. Safe to
    /// hold for as long as you like — commits install their maintenance through copy-on-write,
    /// so a held reference simply keeps observing the revision it was taken from.
    pub fn catalogue(&self) -> Arc<Catalogue> {
        self.shared.catalogue.read().clone()
    }

    // --- updates ----------------------------------------------------------------------------

    /// Open a write transaction: stage any number of updates, then
    /// [`commit`](WriteTxn::commit) them as **one atomically published epoch** — a concurrent
    /// reader sees all of them or none of them. Writers are serialized (a second
    /// `begin_write` blocks until the first transaction commits or drops); readers are never
    /// blocked. The single-update convenience methods below are thin wrappers over this.
    pub fn begin_write(&self) -> WriteTxn<'_> {
        WriteTxn::begin(self)
    }

    /// Append a new vertex carrying `label`, returning its id. A one-update [`WriteTxn`].
    pub fn insert_vertex(&self, label: VertexLabel) -> VertexId {
        let mut txn = self.begin_write();
        let v = txn.insert_vertex(label);
        txn.commit();
        v
    }

    /// Insert the directed edge `src -> dst` carrying `label`. Unknown endpoints are created
    /// on demand with the default vertex label. Returns `false` (and changes nothing) when the
    /// edge already exists. A one-update [`WriteTxn`].
    pub fn insert_edge(&self, src: VertexId, dst: VertexId, label: EdgeLabel) -> bool {
        let mut txn = self.begin_write();
        let inserted = txn.insert_edge(src, dst, label);
        txn.commit();
        inserted
    }

    /// Delete the directed edge `src -> dst` carrying `label`. Returns `false` (and changes
    /// nothing) when no such edge exists. A one-update [`WriteTxn`].
    pub fn delete_edge(&self, src: VertexId, dst: VertexId, label: EdgeLabel) -> bool {
        let mut txn = self.begin_write();
        let deleted = txn.delete_edge(src, dst, label);
        txn.commit();
        deleted
    }

    /// Set the typed property `key = value` on vertex `v`. The column's type is fixed by its
    /// first value; conflicting writes return [`Error::Property`]. A one-update [`WriteTxn`].
    pub fn set_vertex_prop(&self, v: VertexId, key: &str, value: PropValue) -> Result<(), Error> {
        let mut txn = self.begin_write();
        txn.set_vertex_prop(v, key, value)?;
        txn.commit();
        Ok(())
    }

    /// Set the typed property `key = value` on the (existing) edge `src -> dst` carrying
    /// `label`. A one-update [`WriteTxn`].
    pub fn set_edge_prop(
        &self,
        src: VertexId,
        dst: VertexId,
        label: EdgeLabel,
        key: &str,
        value: PropValue,
    ) -> Result<(), Error> {
        let mut txn = self.begin_write();
        txn.set_edge_prop(src, dst, label, key, value)?;
        txn.commit();
        Ok(())
    }

    /// Append a new vertex carrying `label` and an initial set of typed properties, returning
    /// its id. The vertex is created even if a property write fails (the error reports the
    /// first failing write; updates staged before the failure are still committed, matching
    /// the historical single-update semantics).
    pub fn insert_vertex_with_props(
        &self,
        label: VertexLabel,
        props: &[(&str, PropValue)],
    ) -> Result<VertexId, Error> {
        let mut txn = self.begin_write();
        let result = txn.insert_vertex_with_props(label, props);
        txn.commit();
        result
    }

    /// Apply a batch of [`Update`]s in order — as **one** write transaction, so the whole
    /// batch becomes visible to readers atomically — returning how many changed the graph
    /// (edge inserts of existing edges, deletes of missing edges, and property writes that
    /// fail their type/existence checks are no-ops).
    pub fn apply_batch(&self, updates: &[Update]) -> usize {
        let mut txn = self.begin_write();
        let applied = txn.apply_batch(updates);
        txn.commit();
        applied
    }

    /// Fold all pending deltas into a fresh base CSR. Results-neutral: every query returns
    /// exactly what it returned before the compaction, and the graph version is unchanged.
    /// Runs automatically once the pending-delta count crosses the configured
    /// [`compact_threshold`](GraphflowDBBuilder::compact_threshold).
    ///
    /// On a persistent database the compaction doubles as a **checkpoint**: the freshly
    /// folded CSR is written as a binary snapshot and the write-ahead log is truncated.
    /// **Panics** if that checkpoint hits a storage error (the in-memory compaction has
    /// already been published at that point); use [`checkpoint`](GraphflowDB::checkpoint) for
    /// the fallible spelling.
    pub fn compact(&self) {
        if let Err(e) = self.compact_inner(false) {
            panic!("checkpoint during compaction failed: {e} ({e:?})");
        }
    }

    /// Force a durable checkpoint: fold pending deltas into a fresh base CSR (as
    /// [`compact`](GraphflowDB::compact) would), write the folded graph as a binary snapshot,
    /// and truncate the write-ahead log. Recovery time after this is the cost of loading one
    /// snapshot. A no-op returning `Ok` on an in-memory database.
    pub fn checkpoint(&self) -> Result<(), Error> {
        self.compact_inner(true)
    }

    /// Shared body of [`compact`](GraphflowDB::compact) and
    /// [`checkpoint`](GraphflowDB::checkpoint): compaction always happens (and is published)
    /// when deltas are pending; the snapshot+WAL-truncate step runs when storage is attached
    /// and either deltas were folded or `force_checkpoint` demands a fresh snapshot anyway.
    fn compact_inner(&self, force_checkpoint: bool) -> Result<(), Error> {
        let _writer = self.shared.writer.lock();
        let mut snap = self.shared.current.read().clone();
        let folded = snap.has_pending_deltas();
        if folded {
            snap.compact();
            Arc::make_mut(&mut *self.shared.catalogue.write()).set_snapshot(snap.clone());
            *self.shared.current.write() = snap.clone();
        }
        if let Some(storage) = &self.shared.storage {
            if folded || force_checkpoint {
                let counts = persisted_counts(&self.shared.catalogue.read());
                let started = Instant::now();
                storage
                    .lock()
                    .checkpoint(snap.base(), snap.version(), &counts)?;
                self.shared.metrics.record_checkpoint(started.elapsed());
            }
        }
        Ok(())
    }

    /// Force all write-ahead-log frames onto stable storage — an fsync barrier usable under
    /// any [`Durability`] policy (under [`Durability::None`] this is the only thing that
    /// makes commits since the last checkpoint durable). A no-op on an in-memory database.
    pub fn sync(&self) -> Result<(), Error> {
        if let Some(storage) = &self.shared.storage {
            storage.lock().sync()?;
        }
        Ok(())
    }

    /// The data directory this database persists to, or `None` for an in-memory database.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.shared
            .storage
            .as_ref()
            .map(|s| s.lock().dir().to_path_buf())
    }

    /// Override the cost model used by the optimizer.
    ///
    /// Clears the plan cache: cached plans were chosen under the old model.
    pub fn set_cost_model(&self, model: CostModel) {
        *self.shared.cost_model.write() = model;
        // Epoch first, then clear: a plan optimized under the old model carries the old
        // epoch in its cache key, so even one inserted *after* the clear (its optimizer run
        // straddled this call) can never be served again.
        self.shared.config_epoch.fetch_add(1, Ordering::AcqRel);
        self.shared.plan_cache.clear();
    }

    /// Restrict the optimizer's plan space (WCO-only, BJ-only, or the default hybrid space).
    ///
    /// Clears the plan cache: cached plans may fall outside the new space.
    pub fn set_plan_space(&self, options: PlanSpaceOptions) {
        *self.shared.plan_space.write() = options;
        self.shared.config_epoch.fetch_add(1, Ordering::AcqRel);
        self.shared.plan_cache.clear();
    }

    /// Parse a pattern written in the query syntax.
    pub fn parse(&self, pattern: &str) -> Result<QueryGraph, Error> {
        Ok(parse_query(pattern)?)
    }

    /// Run the optimizer directly for a parsed query, bypassing the plan cache.
    ///
    /// Plan-spectrum style experimentation wants a fresh optimizer run per call; serving paths
    /// should use [`prepare`](GraphflowDB::prepare) / [`run`](GraphflowDB::run), which
    /// amortize planning through the cache.
    pub fn plan(&self, query: &QueryGraph) -> Result<Plan, Error> {
        let catalogue = self.catalogue();
        DpOptimizer::new(&catalogue)
            .with_cost_model(*self.shared.cost_model.read())
            .with_options(*self.shared.plan_space.read())
            .optimize(query)
            .ok_or(Error::NoPlan)
    }

    /// Parse, canonicalize and plan a pattern once, returning a rerunnable [`PreparedQuery`].
    ///
    /// Planning goes through the LRU plan cache: preparing a pattern isomorphic to an earlier
    /// one (same shape, any vertex names / clause order) skips the optimizer. The returned
    /// statement is **owned** (`'static`, `Send + Sync`): it keeps a cloned database handle
    /// and `Arc`-shared plan internally, so it can be stored, cloned and executed from any
    /// thread.
    pub fn prepare(&self, pattern: &str) -> Result<PreparedQuery, Error> {
        let query = self.parse(pattern)?;
        self.prepare_query(query)
    }

    /// [`prepare`](GraphflowDB::prepare) for an already-parsed query graph.
    pub fn prepare_query(&self, query: QueryGraph) -> Result<PreparedQuery, Error> {
        let (plan, remap, cache_hit) = self.plan_cached(&query)?;
        Ok(PreparedQuery {
            db: self.clone(),
            query,
            plan,
            remap,
            cache_hit,
        })
    }

    /// Cumulative plan-cache counters (hits, misses = optimizer invocations, evictions, size).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.shared.plan_cache.stats()
    }

    /// A point-in-time snapshot of every db-wide metric: query throughput and latency
    /// percentiles, plan-cache counters, commit/WAL/checkpoint activity. Cheap (atomic loads;
    /// on a persistent database also a brief storage-lock acquisition for the WAL counters)
    /// and safe to call concurrently with queries and commits. Render the snapshot for a
    /// Prometheus scrape with [`Metrics::render`].
    ///
    /// ```
    /// # use graphflow_core::GraphflowDB;
    /// # use graphflow_graph::GraphBuilder;
    /// # let mut b = GraphBuilder::new();
    /// # b.add_edge(0, 1); b.add_edge(1, 2); b.add_edge(0, 2);
    /// # let db = GraphflowDB::from_graph(b.build());
    /// db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    /// let m = db.metrics();
    /// assert_eq!(m.queries_started, 1);
    /// assert_eq!(m.queries_completed, 1);
    /// assert!(m.render().contains("graphflow_queries_completed_total 1"));
    /// ```
    pub fn metrics(&self) -> Metrics {
        let wal = self.shared.storage.as_ref().map(|s| s.lock().wal_stats());
        self.shared.metrics.snapshot(self.plan_cache_stats(), wal)
    }

    /// The slow-query log: every recorded query whose latency reached the configured
    /// [`slow_query_threshold`](GraphflowDBBuilder::slow_query_threshold), oldest first
    /// (bounded at [`SLOW_LOG_CAPACITY`] entries — older ones are dropped). Empty when no
    /// threshold was configured.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared
            .slow_log
            .as_ref()
            .map(|log| log.entries())
            .unwrap_or_default()
    }

    /// `EXPLAIN`: return the chosen plan's operator tree as text — class, estimated cost,
    /// and per-operator estimated cardinalities. Served through the plan cache; nothing is
    /// executed. For the structured report use [`PreparedQuery::explain`], which returns a
    /// typed [`QueryProfile`].
    pub fn explain(&self, pattern: &str) -> Result<String, Error> {
        Ok(self.prepare(pattern)?.explain().to_string())
    }

    /// Count the matches of a pattern with default options (served through the plan cache).
    pub fn count(&self, pattern: &str) -> Result<u64, Error> {
        Ok(self.run(pattern, QueryOptions::default())?.count)
    }

    /// Run a pattern with explicit options (served through the plan cache).
    pub fn run(&self, pattern: &str, options: QueryOptions) -> Result<QueryResult, Error> {
        self.prepare(pattern)?.run(options)
    }

    /// Run an already-parsed query with explicit options (served through the plan cache).
    pub fn run_query(
        &self,
        query: &QueryGraph,
        options: QueryOptions,
    ) -> Result<QueryResult, Error> {
        self.prepare_query(query.clone())?.run(options)
    }

    /// Parse, plan and execute a pattern's `RETURN` clause with default options, producing a
    /// typed [`ResultSet`] (served through the plan cache). A pattern without `RETURN`
    /// behaves as `RETURN *`.
    ///
    /// ```
    /// # use graphflow_core::GraphflowDB;
    /// # use graphflow_graph::{GraphBuilder, PropValue};
    /// let mut b = GraphBuilder::new();
    /// b.add_edge(0, 1);
    /// b.add_edge(0, 2);
    /// for v in 0..3 {
    ///     b.set_vertex_prop(v, "age", PropValue::Int(20 + v as i64)).unwrap();
    /// }
    /// let db = GraphflowDB::from_graph(b.build());
    /// let rs = db.query("(a)->(b) RETURN a, COUNT(*), MAX(b.age)").unwrap();
    /// assert_eq!(rs.rows().len(), 1); // one group: a = vertex 0
    /// assert_eq!(rs.rows()[0][1], Some(PropValue::Int(2)));
    /// assert_eq!(rs.rows()[0][2], Some(PropValue::Int(22)));
    /// ```
    pub fn query(&self, pattern: &str) -> Result<ResultSet, Error> {
        self.query_with(pattern, QueryOptions::default())
    }

    /// [`query`](GraphflowDB::query) with explicit execution options.
    ///
    /// A pattern prefixed with `EXPLAIN` returns the chosen plan (with estimated
    /// cardinalities and costs) as a one-column result set without executing anything; a
    /// `PROFILE` prefix executes the query under `options` and returns the same tree
    /// annotated with per-operator actuals. For the structured reports behind these verbs
    /// see [`PreparedQuery::explain`] and [`PreparedQuery::profile`].
    ///
    /// ```
    /// # use graphflow_core::GraphflowDB;
    /// # use graphflow_graph::GraphBuilder;
    /// # let mut b = GraphBuilder::new();
    /// # b.add_edge(0, 1); b.add_edge(1, 2); b.add_edge(0, 2);
    /// # let db = GraphflowDB::from_graph(b.build());
    /// let rs = db.query("EXPLAIN (a)->(b), (b)->(c), (a)->(c)").unwrap();
    /// assert_eq!(rs.columns(), ["plan"]);
    /// ```
    pub fn query_with(&self, pattern: &str, options: QueryOptions) -> Result<ResultSet, Error> {
        let (mode, rest) = split_mode(pattern);
        match mode {
            QueryMode::Execute => self.prepare(rest)?.execute(options),
            QueryMode::Explain => Ok(explain::result_set(&self.prepare(rest)?.explain())),
            QueryMode::Profile => Ok(explain::result_set(&self.prepare(rest)?.profile(options)?)),
        }
    }

    /// Run a pattern, streaming every match (in query-vertex order) into `sink` instead of
    /// materialising results.
    pub fn run_with_sink(
        &self,
        pattern: &str,
        options: QueryOptions,
        sink: &mut (dyn MatchSink + Send),
    ) -> Result<RuntimeStats, Error> {
        self.prepare(pattern)?.run_with_sink(options, sink)
    }

    /// Execute a specific plan (useful for plan-spectrum style experimentation; bypasses the
    /// plan cache).
    pub fn run_plan(&self, plan: &Plan, options: QueryOptions) -> Result<QueryResult, Error> {
        self.execute_plan(&self.snapshot(), plan, None, None, options)
    }

    /// Execute a specific plan, streaming matches into `sink`.
    pub fn run_plan_with_sink(
        &self,
        plan: &Plan,
        options: QueryOptions,
        sink: &mut (dyn MatchSink + Send),
    ) -> Result<RuntimeStats, Error> {
        self.execute_plan_with_sink(&self.snapshot(), plan, None, None, options, sink)
    }

    /// Convenience: the class (WCO / BJ / hybrid) of the plan chosen for a pattern.
    pub fn plan_class(&self, pattern: &str) -> Result<PlanClass, Error> {
        Ok(self.prepare(pattern)?.plan_class())
    }

    // --- internals -------------------------------------------------------------------------

    /// Plan through the LRU cache. Returns the (shared) plan, an optional vertex remap
    /// (`map[plan query vertex] = query vertex`, present when the cached plan was optimized
    /// for an isomorphic twin with different vertex numbering), and whether this was a hit.
    ///
    /// Cache keys are the **pattern's** canonical code plus the canonicalised *structure* of
    /// the `WHERE` clause — targets, keys, operators and literal types, with the literal
    /// constants normalised away. Two structurally-equal queries that differ only in constants
    /// (`age > 30` vs `age > 50`) therefore share one optimized plan; on a hit the current
    /// query's constants are grafted onto the cached plan before execution.
    ///
    /// Canonicalisation is brute force over vertex permutations, so queries larger than
    /// [`graphflow_query::MAX_CANONICAL_VERTICES`] bypass the cache and are optimized
    /// directly — correct, just not amortized. A cheap exact-form index in front of the
    /// canonical search makes repeated *identical* patterns skip the `O(n!)` search too.
    fn plan_cached(
        &self,
        query: &QueryGraph,
    ) -> Result<(PlanHandle, Option<Vec<usize>>, bool), Error> {
        if query.num_vertices() > graphflow_query::MAX_CANONICAL_VERTICES {
            return Ok((Arc::new(self.plan(query)?), None, false));
        }
        let identity: Vec<usize> = (0..query.num_vertices()).collect();
        let mut exact = graphflow_query::exact_code(query);
        exact.extend(graphflow_query::predicate_structure_code(query, &identity));
        let (code, perm) = match self.shared.plan_cache.canonical_for_exact(&exact) {
            Some(known) => known,
            None => {
                let (pattern_code, perm) = canonical_form(query);
                let mut full = pattern_code.0;
                full.extend(graphflow_query::predicate_structure_code(query, &perm));
                let code = CanonicalCode(full);
                self.shared
                    .plan_cache
                    .remember_exact(exact, code.clone(), perm.clone());
                (code, perm)
            }
        };
        if let Some((plan, cached_perm)) = self.shared.plan_cache.get(&code, self.cache_version()) {
            // Compose the two canonicalising permutations into plan-query -> our-query.
            let mut inverse = vec![0usize; perm.len()];
            for (vertex, &pos) in perm.iter().enumerate() {
                inverse[pos] = vertex;
            }
            let remap: Vec<usize> = cached_perm.iter().map(|&pos| inverse[pos]).collect();
            let identity = remap.iter().enumerate().all(|(i, &v)| i == v);
            let plan = graft_predicates(plan, query, &remap);
            return Ok((plan, (!identity).then_some(remap), true));
        }
        // Read the version key *before* optimizing: if a configuration change (or staleness
        // bump) lands while the optimizer runs, this plan is inserted under the old key and
        // can never be served to post-change lookups.
        let version = self.cache_version();
        let plan: PlanHandle = Arc::new(self.plan(query)?);
        self.shared
            .plan_cache
            .insert(code, plan.clone(), perm, version);
        Ok((plan, None, false))
    }

    pub(crate) fn execute_prepared(
        &self,
        view: &Snapshot,
        plan: &PlanHandle,
        remap: Option<&[usize]>,
        cache_hit: bool,
        options: QueryOptions,
    ) -> Result<QueryResult, Error> {
        self.execute_plan(
            view,
            plan,
            Some(plan.clone()),
            Some((remap, cache_hit)),
            options,
        )
    }

    /// Execute a prepared query's `RETURN` clause into a typed [`ResultSet`]: compile the
    /// clause against the prepared query's own vertex numbering, pick the projecting or
    /// aggregating sink, arm the `COUNT(*)` fast path when the plan is eligible, and run
    /// through the standard dispatch (remap included).
    pub(crate) fn execute_prepared_return(
        &self,
        view: &Snapshot,
        query: &QueryGraph,
        plan: &PlanHandle,
        remap: Option<&[usize]>,
        cache_hit: bool,
        mut options: QueryOptions,
    ) -> Result<ResultSet, Error> {
        let clause = query
            .return_clause()
            .cloned()
            .unwrap_or_else(ReturnClause::star);
        let columns = clause.column_names(query);
        let spec = graphflow_exec::RowSpec::compile(query, &clause);
        let (rows, stats) = if spec.has_aggregates() {
            // `RETURN COUNT(*)` + a plan ending in an E/I extension: the executors add the
            // final extension-set sizes in bulk and the sink only ever sees counts — no
            // per-match tuple is allocated anywhere.
            if clause.is_count_star_only()
                && plan.count_fast_path_eligible()
                && options.output_limit.is_none()
            {
                options.count_tail = true;
            }
            let mut sink = graphflow_exec::AggregatingSink::new(view.clone(), spec);
            let stats = self.execute_plan_with_sink(
                view,
                plan,
                remap,
                Some(cache_hit),
                options,
                &mut sink,
            )?;
            (sink.finish(), stats)
        } else {
            let mut sink = graphflow_exec::ProjectingSink::new(view.clone(), spec);
            let stats = self.execute_plan_with_sink(
                view,
                plan,
                remap,
                Some(cache_hit),
                options,
                &mut sink,
            )?;
            (sink.finish(), stats)
        };
        Ok(ResultSet {
            columns,
            rows,
            stats,
        })
    }

    pub(crate) fn execute_prepared_with_sink(
        &self,
        view: &Snapshot,
        plan: &Plan,
        remap: Option<&[usize]>,
        cache_hit: bool,
        options: QueryOptions,
        sink: &mut (dyn MatchSink + Send),
    ) -> Result<RuntimeStats, Error> {
        self.execute_plan_with_sink(view, plan, remap, Some(cache_hit), options, sink)
    }

    /// Shared QueryResult-materialising path: runs with a counting or collecting sink
    /// depending on the options.
    fn execute_plan(
        &self,
        view: &Snapshot,
        plan: &Plan,
        handle: Option<PlanHandle>,
        prepared: Option<(Option<&[usize]>, bool)>,
        options: QueryOptions,
    ) -> Result<QueryResult, Error> {
        let (remap, cache_info) = match prepared {
            Some((remap, hit)) => (remap, Some(hit)),
            None => (None, None),
        };
        let (stats, tuples) = if options.collect_tuples {
            let mut sink = CollectingSink::new(options.collect_limit);
            let stats =
                self.execute_plan_with_sink(view, plan, remap, cache_info, options, &mut sink)?;
            (stats, sink.into_tuples())
        } else {
            let mut sink = CountingSink::new();
            let stats =
                self.execute_plan_with_sink(view, plan, remap, cache_info, options, &mut sink)?;
            (stats, Vec::new())
        };
        Ok(QueryResult {
            count: stats.output_count,
            plan: handle.unwrap_or_else(|| Arc::new(plan.clone())),
            stats,
            tuples,
        })
    }

    /// The one true execution path: validate options, arm the deadline, pick the executor,
    /// wrap the sink with a vertex remap when the plan belongs to an isomorphic twin, stamp
    /// plan-cache counters into the returned stats, and surface a tripped interrupt as a
    /// typed error. Every stage runs against the single pinned `view`, so one execution
    /// observes exactly one epoch.
    fn execute_plan_with_sink(
        &self,
        view: &Snapshot,
        plan: &Plan,
        remap: Option<&[usize]>,
        cache_info: Option<bool>,
        options: QueryOptions,
        sink: &mut (dyn MatchSink + Send),
    ) -> Result<RuntimeStats, Error> {
        options.validate()?;
        let metrics = &self.shared.metrics;
        metrics.queries_started.fetch_add(1, Ordering::Relaxed);
        // The deadline is armed before pipeline compilation, so hash-join build work and
        // (in the parallel executor) build-side materialisation count against the budget;
        // planning happened at prepare time and is not covered.
        let deadline = options.timeout.map(|t| Instant::now() + t);
        let mut stats = match remap {
            Some(map) => {
                let mut remapping = RemapSink::new(sink, map);
                self.dispatch(view, plan, &options, deadline, &mut remapping)
            }
            None => self.dispatch(view, plan, &options, deadline, sink),
        };
        match cache_info {
            Some(true) => stats.plan_cache_hits += 1,
            Some(false) => stats.plan_cache_misses += 1,
            None => {}
        }
        // Every finished run — completed, cancelled or timed out — is one latency
        // observation, and a slow-log candidate (a timed-out query is slow by definition).
        metrics.query_latency.observe(stats.elapsed);
        if let Some(log) = &self.shared.slow_log {
            if stats.elapsed >= log.threshold() {
                log.record(SlowQuery {
                    query: plan.query.to_string(),
                    latency: stats.elapsed,
                    icost: stats.icost,
                    plan_id: plan.root.fingerprint(),
                });
            }
        }
        if stats.cancelled {
            metrics.queries_cancelled.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Cancelled);
        }
        if stats.timed_out {
            metrics.queries_timed_out.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Timeout);
        }
        metrics.queries_completed.fetch_add(1, Ordering::Relaxed);
        Ok(stats)
    }

    fn dispatch(
        &self,
        view: &Snapshot,
        plan: &Plan,
        options: &QueryOptions,
        deadline: Option<Instant>,
        sink: &mut (dyn MatchSink + Send),
    ) -> RuntimeStats {
        let exec_options = ExecOptions {
            use_intersection_cache: options.intersection_cache,
            output_limit: options.output_limit,
            cancel: options.cancel.clone(),
            deadline,
            count_tail: options.count_tail,
            profile: options.profile,
        };
        // Execution pins `view`: queries observe one delta epoch end to end.
        if options.threads > 1 {
            execute_parallel_with_sink(view, plan, exec_options, options.threads, sink)
        } else if options.adaptive {
            // The adaptive executor re-costs orderings from catalogue estimates per tuple;
            // it runs against its own shared reference (no lock held), so a long adaptive
            // query never stalls commits or other readers.
            let catalogue = self.catalogue();
            execute_adaptive_with_sink(view, &catalogue, plan, exec_options, sink)
        } else {
            execute_with_sink(view, plan, exec_options, sink)
        }
    }
}

// Compile-time proof of the concurrency contract: the handle, prepared statements, result
// handles and tokens all cross threads. (`WriteTxn` deliberately does not — it holds the
// writer lock guard.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GraphflowDB>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<QueryHandle>();
    assert_send_sync::<CancellationToken>();
    assert_send_sync::<GraphSnapshot>();
    assert_send_sync::<QueryOptions>();
};

/// Graft `query`'s predicate constants onto a cached plan optimized for a structurally-equal
/// twin. `remap[plan query vertex] = our query vertex`; our predicates are translated into the
/// plan's vertex/edge numbering and substituted into the plan's query, so the compiled pipeline
/// pushes down *this* query's constants. When the mapped predicates already equal the cached
/// ones (the common repeated-query case), the shared handle is returned untouched.
fn graft_predicates(plan: PlanHandle, query: &QueryGraph, remap: &[usize]) -> PlanHandle {
    if !query.has_predicates() && !plan.query.has_predicates() {
        return plan;
    }
    let mut inverse = vec![0usize; remap.len()];
    for (plan_v, &our_v) in remap.iter().enumerate() {
        inverse[our_v] = plan_v;
    }
    let mapped: Vec<Predicate> = query
        .predicates()
        .iter()
        .map(|p| {
            let target = match p.target {
                PredTarget::Vertex(v) => PredTarget::Vertex(inverse[v]),
                PredTarget::Edge(i) => {
                    let e = query.edges()[i];
                    let (ps, pd) = (inverse[e.src], inverse[e.dst]);
                    let idx = plan
                        .query
                        .edges()
                        .iter()
                        .position(|f| f.src == ps && f.dst == pd && f.label == e.label)
                        .expect("pattern isomorphism maps every edge");
                    PredTarget::Edge(idx)
                }
            };
            Predicate {
                target,
                key: p.key.clone(),
                op: p.op,
                value: p.value.clone(),
            }
        })
        .collect();
    let substituted = plan.query.with_predicates(mapped);
    if substituted.predicates() == plan.query.predicates() {
        return plan;
    }
    Arc::new(Plan {
        query: substituted,
        root: plan.root.clone(),
        estimated_cost: plan.estimated_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphflow_graph::GraphBuilder;
    use graphflow_query::patterns;

    fn db() -> GraphflowDB {
        let edges = graphflow_graph::generator::powerlaw_cluster(400, 4, 0.5, 77);
        let mut b = GraphBuilder::new();
        b.add_edges(edges);
        GraphflowDB::from_graph(b.build())
    }

    #[test]
    fn count_matches_reference() {
        let db = db();
        let q = patterns::asymmetric_triangle();
        let expected = graphflow_catalog::count_matches(&db.graph(), &q);
        assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), expected);
    }

    #[test]
    fn execution_modes_agree() {
        let db = db();
        let q = patterns::diamond_x();
        let expected = graphflow_catalog::count_matches(&db.graph(), &q);
        let fixed = db.run_query(&q, QueryOptions::default()).unwrap();
        let adaptive = db
            .run_query(&q, QueryOptions::new().adaptive(true))
            .unwrap();
        let parallel = db.run_query(&q, QueryOptions::new().threads(4)).unwrap();
        assert_eq!(fixed.count, expected);
        assert_eq!(adaptive.count, expected);
        assert_eq!(parallel.count, expected);
        assert!(fixed.stats.icost > 0);
    }

    #[test]
    fn adaptive_and_threads_together_are_rejected() {
        let db = db();
        let result = db.run(
            "(a)->(b), (b)->(c), (a)->(c)",
            QueryOptions::new().adaptive(true).threads(4),
        );
        assert!(matches!(result, Err(Error::InvalidOptions(_))));
        let message = result.unwrap_err().to_string();
        assert!(message.contains("adaptive"), "{message}");
        // Each mode alone stays valid.
        assert!(db
            .run(
                "(a)->(b), (b)->(c), (a)->(c)",
                QueryOptions::new().adaptive(true)
            )
            .is_ok());
        assert!(db
            .run(
                "(a)->(b), (b)->(c), (a)->(c)",
                QueryOptions::new().threads(4)
            )
            .is_ok());
    }

    #[test]
    fn explain_mentions_operators() {
        let db = db();
        let text = db.explain("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        assert!(text.contains("SCAN"));
        assert!(text.contains("EXTEND/INTERSECT"));
        assert!(text.contains("plan class: WCO"));
    }

    #[test]
    fn errors_are_reported_with_sources() {
        use std::error::Error as _;
        let db = db();
        assert!(matches!(db.count("(a)->"), Err(Error::Parse(_))));
        let err = db.count("(a)->").unwrap_err();
        assert!(!err.to_string().is_empty());
        assert!(err.source().is_some(), "parse errors chain their source");
    }

    #[test]
    fn plan_space_restrictions_apply() {
        let db = db();
        db.set_plan_space(PlanSpaceOptions::wco_only());
        let class = db
            .plan_class("(a)->(b), (b)->(c), (a)->(c), (c)->(d), (b)->(d)")
            .unwrap();
        assert_eq!(class, PlanClass::Wco);
    }

    #[test]
    fn set_plan_space_clears_the_plan_cache() {
        let db = db();
        let pattern = "(a)->(b), (b)->(c), (a)->(c), (c)->(d), (b)->(d)";
        db.count(pattern).unwrap();
        assert_eq!(db.plan_cache_stats().entries, 1);
        db.set_plan_space(PlanSpaceOptions::wco_only());
        assert_eq!(
            db.plan_cache_stats().entries,
            0,
            "stale plans must not survive a plan-space change"
        );
        assert_eq!(db.plan_class(pattern).unwrap(), PlanClass::Wco);
    }

    #[test]
    fn collected_tuples_respect_limit() {
        let db = db();
        let result = db
            .run(
                "(a)->(b), (b)->(c), (a)->(c)",
                QueryOptions::new().collect_tuples(true).collect_limit(7),
            )
            .unwrap();
        assert!(result.tuples.len() <= 7);
        assert!(result.count >= result.tuples.len() as u64);
    }

    #[test]
    fn prepared_queries_amortize_planning() {
        let db = db();
        let first = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        assert!(!first.was_cached());
        let second = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        assert!(second.was_cached());
        let stats = db.plan_cache_stats();
        assert_eq!(stats.misses, 1, "exactly one optimizer invocation");
        assert_eq!(stats.hits, 1);
        assert_eq!(first.count().unwrap(), second.count().unwrap());
        // The per-run stats carry the cache outcome.
        let run = second.run(QueryOptions::default()).unwrap();
        assert_eq!(run.stats.plan_cache_hits, 1);
        assert_eq!(run.stats.plan_cache_misses, 0);
    }

    #[test]
    fn isomorphic_rewritings_share_a_plan_and_remap_tuples() {
        let db = db();
        let original = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        // Same triangle, renamed vertices and shuffled clauses: (x)->(y) plays the (b)->(c)
        // role, so tuple positions must be remapped on the way out.
        let rewritten = db.prepare("(y)->(z), (x)->(y), (x)->(z)").unwrap();
        assert!(rewritten.was_cached());
        let a = original
            .run(QueryOptions::new().collect_tuples(true))
            .unwrap();
        let b = rewritten
            .run(QueryOptions::new().collect_tuples(true))
            .unwrap();
        assert_eq!(a.count, b.count);
        // Tuple positions follow each query's own vertex numbering (order of first
        // appearance), so compare through the role names: (x, y, z) plays (a, b, c).
        let xi = rewritten.query().vertex_index("x").unwrap();
        let yi = rewritten.query().vertex_index("y").unwrap();
        let zi = rewritten.query().vertex_index("z").unwrap();
        let mut ta = a.tuples.clone();
        let mut tb: Vec<Vec<u32>> = b.tuples.iter().map(|t| vec![t[xi], t[yi], t[zi]]).collect();
        ta.sort_unstable();
        tb.sort_unstable();
        assert_eq!(ta, tb, "remapped tuples must be the same matches");
        // Every rewritten tuple respects its own query's edges: x->y, y->z, x->z.
        for t in &b.tuples {
            let (x, y, z) = (t[xi], t[yi], t[zi]);
            assert!(db.graph().has_edge(x, y, graphflow_graph::EdgeLabel(0)));
            assert!(db.graph().has_edge(y, z, graphflow_graph::EdgeLabel(0)));
            assert!(db.graph().has_edge(x, z, graphflow_graph::EdgeLabel(0)));
        }
    }

    #[test]
    fn streaming_sink_agrees_with_count() {
        let db = db();
        let pattern = "(a)->(b), (b)->(c), (a)->(c)";
        let expected = db.count(pattern).unwrap();
        let mut streamed = 0u64;
        let stats = {
            let mut sink = CallbackSink::new(|_t: &[u32]| {
                streamed += 1;
                true
            });
            db.run_with_sink(pattern, QueryOptions::default(), &mut sink)
                .unwrap()
        };
        assert_eq!(streamed, expected);
        assert_eq!(stats.output_count, expected);
    }

    /// Two triangles whose vertices carry `age = 10 * id` and whose edges carry
    /// `w = 0.1 * src`.
    fn props_db() -> GraphflowDB {
        let mut b = GraphBuilder::new();
        for base in [0u32, 3] {
            b.add_edge(base, base + 1);
            b.add_edge(base + 1, base + 2);
            b.add_edge(base, base + 2);
        }
        for v in 0..6u32 {
            b.set_vertex_prop(v, "age", PropValue::Int(10 * v as i64))
                .unwrap();
        }
        for &(s, d, l) in b.clone().build().edges() {
            b.set_edge_prop(s, d, l, "w", PropValue::Float(0.1 * s as f64))
                .unwrap();
        }
        GraphflowDB::from_graph(b.build())
    }

    #[test]
    fn predicate_queries_run_and_push_down() {
        let db = props_db();
        let triangle = "(a)->(b), (b)->(c), (a)->(c)";
        assert_eq!(db.count(triangle).unwrap(), 2);
        assert_eq!(
            db.count(&format!("{triangle} WHERE a.age >= 30")).unwrap(),
            1
        );
        assert_eq!(
            db.count(&format!("{triangle} WHERE b.age = 40")).unwrap(),
            1
        );
        assert_eq!(
            db.count(&format!("{triangle} WHERE a.age > 99")).unwrap(),
            0
        );
        // Edge predicate through a named edge.
        assert_eq!(
            db.count("(a)-[e]->(b), (b)->(c), (a)->(c) WHERE e.w > 0.2")
                .unwrap(),
            1
        );
        // Pushdown is observable in the stats, and all three executors agree.
        let filtered = db
            .run(
                &format!("{triangle} WHERE a.age >= 30"),
                QueryOptions::default(),
            )
            .unwrap();
        assert!(filtered.stats.predicate_evals > 0);
        assert!(filtered.stats.predicate_drops > 0);
        for opts in [
            QueryOptions::new().adaptive(true),
            QueryOptions::new().threads(4),
        ] {
            let out = db
                .run(&format!("{triangle} WHERE a.age >= 30"), opts)
                .unwrap();
            assert_eq!(out.count, 1);
        }
    }

    #[test]
    fn plan_cache_canonicalizes_predicate_constants() {
        let db = props_db();
        let triangle = "(a)->(b), (b)->(c), (a)->(c)";
        let loose = db.prepare(&format!("{triangle} WHERE a.age >= 0")).unwrap();
        assert!(!loose.was_cached());
        assert_eq!(loose.count().unwrap(), 2);
        // Same structure, different constant: plan-cache hit, different answer.
        let tight = db
            .prepare(&format!("{triangle} WHERE a.age >= 30"))
            .unwrap();
        assert!(tight.was_cached(), "constants are canonicalized away");
        assert_eq!(tight.count().unwrap(), 1);
        assert_eq!(db.plan_cache_stats().misses, 1, "one optimizer run");
        // An isomorphic rewriting with yet another constant still hits, and remaps tuples.
        let twin = db
            .prepare("(y)->(z), (x)->(y), (x)->(z) WHERE x.age >= 30")
            .unwrap();
        assert!(twin.was_cached());
        assert_eq!(twin.count().unwrap(), 1);
        let run = twin.run(QueryOptions::new().collect_tuples(true)).unwrap();
        let xi = twin.query().vertex_index("x").unwrap();
        assert_eq!(run.tuples.len(), 1);
        assert_eq!(run.tuples[0][xi], 3, "x plays the filtered (a) role");
        // A different predicate *structure* (another operator) is a different cache entry.
        let other_op = db.prepare(&format!("{triangle} WHERE a.age = 30")).unwrap();
        assert!(!other_op.was_cached());
        // As is the bare pattern.
        let bare = db.prepare(triangle).unwrap();
        assert!(!bare.was_cached());
        assert_eq!(bare.count().unwrap(), 2);
    }

    #[test]
    fn return_clauses_share_plans_and_count_star_takes_the_fast_path() {
        let db = db();
        let triangle = "(a)->(b), (b)->(c), (a)->(c)";
        let bare = db.prepare(triangle).unwrap();
        assert!(!bare.was_cached());
        // Queries differing only in RETURN are plan-cache hits: the clause is excluded from
        // the canonical form.
        let counted = db.prepare(&format!("{triangle} RETURN COUNT(*)")).unwrap();
        assert!(counted.was_cached());
        let projected = db.prepare(&format!("{triangle} RETURN a, b")).unwrap();
        assert!(projected.was_cached());
        assert_eq!(db.plan_cache_stats().misses, 1, "one optimizer run total");

        let expected = bare.count().unwrap();
        assert!(expected > 0);
        // COUNT(*) agrees with the raw count across all three executors, and the serial /
        // parallel runs bulk-count the final extension column instead of materialising it.
        for opts in [
            QueryOptions::new(),
            QueryOptions::new().adaptive(true),
            QueryOptions::new().threads(4),
        ] {
            let rs = counted.execute(opts.clone()).unwrap();
            assert_eq!(rs.scalar_count(), Some(expected));
            assert!(
                rs.stats.bulk_counted_extensions > 0,
                "fast path fired (opts {opts:?})"
            );
        }
        // RETURN * produces full tuples with vertex-named columns.
        let rs = projected.execute(QueryOptions::default()).unwrap();
        assert_eq!(rs.columns(), ["a", "b"]);
        assert_eq!(rs.len(), expected as usize);
    }

    #[test]
    fn execute_runs_projections_and_grouped_aggregates() {
        let db = props_db();
        // Grouped aggregate over the two triangles: one group per apex vertex.
        let rs = db
            .query("(a)->(b), (b)->(c), (a)->(c) RETURN a, COUNT(*), MIN(c.age)")
            .unwrap();
        assert_eq!(rs.columns(), ["a", "COUNT(*)", "MIN(c.age)"]);
        assert_eq!(
            rs.rows(),
            &[
                vec![
                    Some(PropValue::Int(0)),
                    Some(PropValue::Int(1)),
                    Some(PropValue::Int(20))
                ],
                vec![
                    Some(PropValue::Int(3)),
                    Some(PropValue::Int(1)),
                    Some(PropValue::Int(50))
                ],
            ]
        );
        // Projection with ORDER BY + LIMIT (top-K) and DISTINCT.
        let rs = db
            .query("(a)->(b) RETURN DISTINCT a.age ORDER BY a.age DESC LIMIT 2")
            .unwrap();
        assert_eq!(
            rs.rows(),
            &[
                vec![Some(PropValue::Int(40))],
                vec![Some(PropValue::Int(30))]
            ]
        );
        // Global aggregate over an empty match set still yields its one row.
        let rs = db
            .query("(a)->(b) WHERE a.age > 999 RETURN COUNT(*), MAX(b.age)")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Some(PropValue::Int(0)), None]]);
        // No RETURN behaves as RETURN *.
        let rs = db.query("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        assert_eq!(rs.columns(), ["a", "b", "c"]);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn executors_agree_on_result_sets_including_remapped_twins() {
        let db = props_db();
        let pattern = "(a)-[e]->(b), (b)->(c), (a)->(c) RETURN a, SUM(e.w), AVG(c.age)";
        let reference = db.query(pattern).unwrap();
        for opts in [
            QueryOptions::new().adaptive(true),
            QueryOptions::new().threads(4),
        ] {
            let rs = db.query_with(pattern, opts.clone()).unwrap();
            assert_eq!(rs.rows(), reference.rows(), "{opts:?}");
        }
        // An isomorphic rewriting is a cache hit whose tuples are remapped before the
        // aggregation sink sees them: x plays the (a) role.
        let twin = db
            .prepare("(y)->(z), (x)-[f]->(y), (x)->(z) RETURN x, SUM(f.w), AVG(z.age)")
            .unwrap();
        assert!(twin.was_cached());
        let rs = twin.execute(QueryOptions::default()).unwrap();
        assert_eq!(rs.rows(), reference.rows());
        // Parallel execution of the twin goes through RemapSink's forwarded partials (each
        // thread-local fold remaps before folding) and must agree too.
        let rs = twin.execute(QueryOptions::new().threads(4)).unwrap();
        assert_eq!(rs.rows(), reference.rows());
    }

    #[test]
    fn property_updates_are_live_and_isolated() {
        let db = props_db();
        let q = "(a)->(b), (b)->(c), (a)->(c) WHERE a.age >= 30";
        assert_eq!(db.count(q).unwrap(), 1);
        let before = db.snapshot();
        // Raising vertex 0's age makes the first triangle match too.
        db.set_vertex_prop(0, "age", PropValue::Int(70)).unwrap();
        assert_eq!(db.count(q).unwrap(), 2);
        // The pre-update snapshot still answers with the old property value.
        use graphflow_graph::GraphView as _;
        assert_eq!(before.vertex_prop(0, "age"), Some(PropValue::Int(0)));
        // Type mismatches surface as unified errors with a source.
        let err = db
            .set_vertex_prop(0, "age", PropValue::str("old"))
            .unwrap_err();
        assert!(matches!(err, Error::Property(_)));
        assert!(std::error::Error::source(&err).is_some());
        // Deleting an edge drops its properties; compaction is results-neutral.
        let eq = "(a)-[e]->(b), (b)->(c), (a)->(c) WHERE e.w > 0.2";
        assert_eq!(db.count(eq).unwrap(), 1);
        db.delete_edge(3, 4, EdgeLabel(0));
        assert_eq!(db.count(eq).unwrap(), 0);
        db.compact();
        assert_eq!(db.count(q).unwrap(), 1);
        assert_eq!(db.count(eq).unwrap(), 0);
    }

    #[test]
    fn apply_batch_sets_properties() {
        let db = props_db();
        let applied = db.apply_batch(&[
            Update::InsertVertex {
                label: VertexLabel(0),
            },
            Update::SetVertexProp {
                v: 6,
                key: "age".into(),
                value: PropValue::Int(100),
            },
            Update::SetEdgeProp {
                src: 0,
                dst: 1,
                label: EdgeLabel(0),
                key: "w".into(),
                value: PropValue::Float(0.9),
            },
            // Type mismatch and missing edge are counted as no-ops.
            Update::SetVertexProp {
                v: 6,
                key: "age".into(),
                value: PropValue::Bool(true),
            },
            Update::SetEdgeProp {
                src: 5,
                dst: 0,
                label: EdgeLabel(0),
                key: "w".into(),
                value: PropValue::Float(0.5),
            },
        ]);
        assert_eq!(applied, 3);
        use graphflow_graph::GraphView as _;
        assert_eq!(
            db.snapshot().vertex_prop(6, "age"),
            Some(PropValue::Int(100))
        );
        assert_eq!(
            db.count("(a)-[e]->(b), (b)->(c), (a)->(c) WHERE e.w > 0.5")
                .unwrap(),
            1
        );
        let v = db
            .insert_vertex_with_props(VertexLabel(1), &[("age", PropValue::Int(7))])
            .unwrap();
        assert_eq!(db.snapshot().vertex_prop(v, "age"), Some(PropValue::Int(7)));
    }

    #[test]
    fn updates_change_query_results() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let db = GraphflowDB::from_graph(b.build());
        let triangle = "(a)->(b), (b)->(c), (a)->(c)";
        assert_eq!(db.count(triangle).unwrap(), 0);
        assert!(db.insert_edge(0, 2, EdgeLabel(0)));
        assert!(!db.insert_edge(0, 2, EdgeLabel(0)), "duplicate insert");
        assert_eq!(db.count(triangle).unwrap(), 1);
        assert_eq!(db.graph_version(), 1);
        // All three executors see the same snapshot.
        let adaptive = db
            .run(triangle, QueryOptions::new().adaptive(true))
            .unwrap();
        let parallel = db.run(triangle, QueryOptions::new().threads(4)).unwrap();
        assert_eq!(adaptive.count, 1);
        assert_eq!(parallel.count, 1);
        assert!(db.delete_edge(0, 2, EdgeLabel(0)));
        assert_eq!(db.count(triangle).unwrap(), 0);
    }

    #[test]
    fn snapshots_are_isolated_and_compaction_is_neutral() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let db = GraphflowDB::from_graph(b.build());
        let before = db.snapshot();
        db.delete_edge(0, 2, EdgeLabel(0));
        db.insert_edge(2, 3, EdgeLabel(0));
        // The old snapshot still answers with the pre-update graph.
        use graphflow_graph::GraphView as _;
        assert!(before.has_edge(0, 2, EdgeLabel(0)));
        assert_eq!(before.num_edges(), 3);
        assert_eq!(
            graphflow_catalog::count_matches(&before, &patterns::asymmetric_triangle()),
            1
        );
        // Compaction changes neither results nor the version.
        let version = db.graph_version();
        let count_before = db.count("(a)->(b), (b)->(c)").unwrap();
        db.compact();
        assert_eq!(db.graph_version(), version);
        assert_eq!(db.count("(a)->(b), (b)->(c)").unwrap(), count_before);
        assert!(!db.snapshot().has_pending_deltas());
        assert_eq!(db.graph().num_edges(), 3, "deltas folded into the base CSR");
    }

    #[test]
    fn apply_batch_counts_applied_updates() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let db = GraphflowDB::from_graph(b.build());
        let applied = db.apply_batch(&[
            Update::InsertVertex {
                label: VertexLabel(0),
            },
            Update::InsertEdge {
                src: 1,
                dst: 2,
                label: EdgeLabel(0),
            },
            Update::InsertEdge {
                src: 0,
                dst: 1,
                label: EdgeLabel(0),
            }, // already exists
            Update::DeleteEdge {
                src: 5,
                dst: 6,
                label: EdgeLabel(0),
            }, // missing
        ]);
        assert_eq!(applied, 2);
        assert_eq!(db.count("(a)->(b), (b)->(c)").unwrap(), 1);
    }

    #[test]
    fn staleness_threshold_triggers_plan_reoptimization() {
        let edges = graphflow_graph::generator::powerlaw_cluster(200, 3, 0.5, 9);
        let mut b = GraphBuilder::new();
        b.add_edges(edges);
        let db = GraphflowDB::builder(b.build())
            .staleness_threshold(4)
            .build();
        let pattern = "(a)->(b), (b)->(c), (a)->(c)";
        db.count(pattern).unwrap();
        db.count(pattern).unwrap();
        assert_eq!(db.plan_cache_stats().hits, 1);
        assert_eq!(db.plan_cache_stats().invalidations, 0);

        // Two updates (deletes of existing edges are exactly one update each): below the
        // threshold, the cached plan is still served.
        let victims: Vec<_> = db.graph().edges().iter().copied().take(4).collect();
        assert!(db.delete_edge(victims[0].0, victims[0].1, victims[0].2));
        assert!(db.delete_edge(victims[1].0, victims[1].1, victims[1].2));
        assert_eq!(db.stats_version(), 0);
        db.count(pattern).unwrap();
        assert_eq!(db.plan_cache_stats().hits, 2);

        // Crossing the threshold bumps the statistics version: the old-version plan must not
        // be reused, and the catalogue's exact counts reflect the mutated graph.
        let edge_count_before = db.catalogue().edge_count(
            EdgeLabel(0),
            graphflow_graph::VertexLabel(0),
            graphflow_graph::VertexLabel(0),
        );
        assert!(db.delete_edge(victims[2].0, victims[2].1, victims[2].2));
        assert!(db.delete_edge(victims[3].0, victims[3].1, victims[3].2));
        assert!(db.stats_version() > 0, "statistics version advanced");
        let misses_before = db.plan_cache_stats().misses;
        db.count(pattern).unwrap();
        let stats = db.plan_cache_stats();
        assert_eq!(stats.invalidations, 1, "stale plan dropped, not reused");
        assert_eq!(stats.misses, misses_before + 1, "optimizer ran again");
        assert!(
            db.catalogue().edge_count(
                EdgeLabel(0),
                graphflow_graph::VertexLabel(0),
                graphflow_graph::VertexLabel(0)
            ) < edge_count_before,
            "catalogue exact counts track updates incrementally"
        );
        assert_eq!(db.catalogue().total_updates(), 4);
    }

    #[test]
    fn auto_compaction_triggers_at_threshold() {
        let mut b = GraphBuilder::with_vertices(5);
        b.add_edge(0, 1);
        let db = GraphflowDB::builder(b.build()).compact_threshold(3).build();
        db.insert_edge(1, 2, EdgeLabel(0));
        db.insert_edge(2, 3, EdgeLabel(0));
        assert!(
            db.snapshot().has_pending_deltas(),
            "2 pending < threshold 3"
        );
        db.insert_edge(3, 4, EdgeLabel(0));
        assert!(
            !db.snapshot().has_pending_deltas(),
            "threshold crossed: deltas folded into the CSR automatically"
        );
        assert_eq!(db.graph().num_edges(), 4);
        assert_eq!(db.count("(a)->(b)").unwrap(), 4);
    }

    #[test]
    fn delta_merges_are_observable_in_stats() {
        let edges = graphflow_graph::generator::powerlaw_cluster(150, 3, 0.5, 3);
        let mut b = GraphBuilder::new();
        b.add_edges(edges);
        let db = GraphflowDB::from_graph(b.build());
        let pattern = "(a)->(b), (b)->(c), (a)->(c)";
        let clean = db.run(pattern, QueryOptions::default()).unwrap();
        assert_eq!(clean.stats.delta_merges, 0, "no deltas, no merges");
        // Touch a vertex that participates in triangles, then re-run.
        let (u, v, _) = db.graph().edges()[0];
        db.delete_edge(u, v, EdgeLabel(0));
        db.insert_edge(u, v, EdgeLabel(0));
        let dirty = db.run(pattern, QueryOptions::default()).unwrap();
        assert_eq!(dirty.count, clean.count, "cancelled updates change nothing");
        // The cancelled pair leaves no overlay, so this is still merge-free; a real overlay
        // shows up in the counter.
        let n = db.graph().num_vertices() as u32;
        db.insert_edge(u, n, EdgeLabel(0));
        let overlaid = db.run(pattern, QueryOptions::default()).unwrap();
        assert!(overlaid.stats.delta_merges > 0, "merged lists are counted");
    }

    #[test]
    fn builder_configures_everything() {
        let edges = graphflow_graph::generator::powerlaw_cluster(200, 3, 0.4, 5);
        let mut b = GraphBuilder::new();
        b.add_edges(edges);
        let db = GraphflowDB::builder(b.build())
            .plan_space(PlanSpaceOptions::wco_only())
            .cost_model(CostModel::default())
            .catalogue_config(CatalogueConfig::default())
            .plan_cache_capacity(2)
            .build();
        assert_eq!(db.plan_cache_stats().capacity, 2);
        // Three distinct shapes through a 2-entry cache force an eviction.
        db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap();
        db.count("(a)->(b), (b)->(c)").unwrap();
        db.count("(a)->(b), (b)->(c), (c)->(d)").unwrap();
        assert_eq!(db.plan_cache_stats().evictions, 1);
    }
}
