//! The LRU plan cache behind [`GraphflowDB::prepare`](crate::GraphflowDB::prepare).
//!
//! The paper's premise is that parse → canonicalize → optimize dominates execution for
//! serving-style workloads, so the facade runs the DP optimizer **once per distinct query
//! shape**: plans are cached under the canonical code of the query graph
//! ([`graphflow_query::canonical`]), which makes every isomorphic rewriting of a pattern — same
//! shape, different vertex names or clause order — a cache hit. Entries are evicted least
//! recently used once the configured capacity is exceeded.

use graphflow_plan::PlanHandle;
use graphflow_query::CanonicalCode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Point-in-time counters of the plan cache behind [`GraphflowDB::plan_cache_stats`](crate::GraphflowDB::plan_cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (optimizer skipped).
    pub hits: u64,
    /// Lookups that had to run the optimizer. This is exactly the number of optimizer
    /// invocations made through the cache.
    pub misses: u64,
    /// Entries evicted because the cache was full.
    pub evictions: u64,
    /// Entries dropped because they were optimized under an older graph statistics version
    /// (the graph drifted past the staleness threshold, so the plan was re-optimized instead
    /// of silently reusing dead statistics).
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Maximum number of entries (0 = caching disabled).
    pub capacity: usize,
}

/// The `(statistics version, optimizer-configuration epoch)` pair an entry was optimized
/// under. Read by the facade *before* the optimizer runs, so a plan whose optimization
/// straddled a configuration change is keyed under the old epoch and never served after it.
pub(crate) type CacheVersion = (u64, u64);

struct Entry {
    plan: PlanHandle,
    /// The canonicalising permutation of the *cached* plan's query
    /// (`perm[plan query vertex] = canonical position`), kept so later isomorphic queries can
    /// be mapped onto the cached plan's vertex numbering.
    perm: Vec<usize>,
    /// The version pair the plan was optimized under; a lookup with a different pair drops
    /// the entry (the logical key is `(canonical query, statistics version, config epoch)`).
    version: CacheVersion,
    last_used: u64,
}

struct Inner {
    map: HashMap<CanonicalCode, Entry>,
    invalidations: u64,
    /// First-level index: the cheap identity-permutation encoding of a query
    /// ([`graphflow_query::exact_code`]) mapped to its canonical code and canonicalising
    /// permutation. A repeated byte-identical pattern resolves through this map and skips the
    /// `O(n!)` canonical search entirely; only novel vertex numberings pay for
    /// canonicalisation. Bounded by `4 * capacity` (cleared wholesale when exceeded).
    exact_index: HashMap<Vec<u64>, (CanonicalCode, Vec<usize>)>,
    tick: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of optimized plans keyed by canonical query form.
pub(crate) struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                invalidations: 0,
                exact_index: HashMap::new(),
                tick: 0,
                evictions: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Resolve a cheap exact (identity-permutation) code to the canonical form recorded for
    /// it, if this byte-identical query structure has been seen before.
    pub(crate) fn canonical_for_exact(&self, exact: &[u64]) -> Option<(CanonicalCode, Vec<usize>)> {
        if self.capacity == 0 {
            return None;
        }
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.exact_index.get(exact).cloned()
    }

    /// Record the canonical form of an exact code so future identical queries skip the
    /// canonical search.
    pub(crate) fn remember_exact(&self, exact: Vec<u64>, code: CanonicalCode, perm: Vec<usize>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.exact_index.len() >= self.capacity.saturating_mul(4) {
            inner.exact_index.clear();
        }
        inner.exact_index.insert(exact, (code, perm));
    }

    /// Look up a plan optimized under the `version` pair, marking the entry as recently
    /// used. Returns the plan and the cached query's canonicalising permutation. An entry
    /// carrying a different version pair is dropped (counted as an invalidation) and reported
    /// as a miss, so the caller re-optimizes against current statistics and configuration. A miss only bumps the miss
    /// counter; the caller is expected to optimize and [`insert`](PlanCache::insert).
    pub(crate) fn get(
        &self,
        code: &CanonicalCode,
        version: CacheVersion,
    ) -> Option<(PlanHandle, Vec<usize>)> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(code) {
            Some(entry) if entry.version == version => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.plan.clone(), entry.perm.clone()))
            }
            Some(_) => {
                inner.map.remove(code);
                inner.invalidations += 1;
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a plan freshly optimized under the `version` pair, evicting the least recently
    /// used entry if full.
    pub(crate) fn insert(
        &self,
        code: CanonicalCode,
        plan: PlanHandle,
        perm: Vec<usize>,
        version: CacheVersion,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&code) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            code,
            Entry {
                plan,
                perm,
                version,
                last_used: tick,
            },
        );
    }

    /// Drop every entry (used when the cost model or plan space changes: cached plans would no
    /// longer reflect the optimizer's configuration). Counters are preserved.
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.clear();
        // The exact index only maps to canonical codes (not plans), so it could survive a
        // clear — but dropping it too keeps the invariant simple: clear() forgets everything.
        inner.exact_index.clear();
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphflow_plan::Plan;
    use graphflow_query::{canonical_form, patterns};
    use std::sync::Arc;

    fn dummy_plan(q: &graphflow_query::QueryGraph) -> PlanHandle {
        let edge = q.edges()[0];
        let mut node = graphflow_plan::PlanNode::scan(edge);
        for v in 0..q.num_vertices() {
            if let Some(next) = graphflow_plan::PlanNode::extend(q, node.clone(), v) {
                node = next;
            }
        }
        // The exact tree does not matter for cache tests; cover the query if possible.
        Arc::new(Plan {
            query: q.clone(),
            root: node,
            estimated_cost: 0.0,
        })
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let cache = PlanCache::new(2);
        let queries = [
            patterns::asymmetric_triangle(),
            patterns::diamond_x(),
            patterns::directed_path(3),
        ];
        let forms: Vec<_> = queries.iter().map(canonical_form).collect();
        for (q, (code, perm)) in queries.iter().zip(forms.iter()) {
            assert!(cache.get(code, (0, 0)).is_none());
            cache.insert(code.clone(), dummy_plan(q), perm.clone(), (0, 0));
        }
        // Capacity 2: the triangle (oldest, never touched again) must be gone.
        assert!(cache.get(&forms[0].0, (0, 0)).is_none());
        assert!(cache.get(&forms[1].0, (0, 0)).is_some());
        assert!(cache.get(&forms[2].0, (0, 0)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn recently_used_entry_survives_eviction() {
        let cache = PlanCache::new(2);
        let q1 = patterns::asymmetric_triangle();
        let q2 = patterns::diamond_x();
        let q3 = patterns::directed_path(3);
        let (c1, p1) = canonical_form(&q1);
        let (c2, p2) = canonical_form(&q2);
        let (c3, p3) = canonical_form(&q3);
        cache.insert(c1.clone(), dummy_plan(&q1), p1, (0, 0));
        cache.insert(c2.clone(), dummy_plan(&q2), p2, (0, 0));
        // Touch q1 so q2 becomes the LRU victim.
        assert!(cache.get(&c1, (0, 0)).is_some());
        cache.insert(c3, dummy_plan(&q3), p3, (0, 0));
        assert!(cache.get(&c1, (0, 0)).is_some());
        assert!(cache.get(&c2, (0, 0)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let q = patterns::asymmetric_triangle();
        let (code, perm) = canonical_form(&q);
        cache.insert(code.clone(), dummy_plan(&q), perm, (0, 0));
        assert!(cache.get(&code, (0, 0)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn version_mismatch_invalidates_entry() {
        let cache = PlanCache::new(4);
        let q = patterns::asymmetric_triangle();
        let (code, perm) = canonical_form(&q);
        cache.insert(code.clone(), dummy_plan(&q), perm.clone(), (0, 0));
        assert!(cache.get(&code, (0, 0)).is_some(), "same version hits");
        // The graph drifted: version 1 lookups must not reuse the version-0 plan.
        assert!(cache.get(&code, (1, 0)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0, "stale entry is dropped eagerly");
        // Re-inserting under the new version serves version-1 lookups again.
        cache.insert(code.clone(), dummy_plan(&q), perm.clone(), (1, 0));
        assert!(cache.get(&code, (1, 0)).is_some());
        // The configuration epoch is the second half of the key: a plan inserted under an
        // old epoch (e.g. its optimizer run straddled a set_plan_space that cleared the
        // cache) is invalidated by the first post-change lookup, not served.
        cache.insert(code.clone(), dummy_plan(&q), perm, (1, 0));
        assert!(cache.get(&code, (1, 1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
