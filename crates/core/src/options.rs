//! Per-query execution options as a fluent builder.

use crate::CancellationToken;
use std::time::Duration;

/// Per-query execution settings, built fluently:
///
/// ```
/// use graphflow_core::QueryOptions;
/// let opts = QueryOptions::new().threads(4).limit(1000);
/// assert_eq!(opts.num_threads(), 4);
/// assert_eq!(opts.output_limit(), Some(1000));
/// ```
///
/// The default configuration is serial, fixed-plan execution with the intersection cache on,
/// no output limit, no tuple collection, no timeout and no cancellation token.
///
/// # Mode precedence
///
/// [`adaptive`](QueryOptions::adaptive) and [`threads`](QueryOptions::threads)` > 1` select
/// *different engines* (the per-tuple adaptive executor is inherently serial); requesting both
/// at once is rejected with [`Error::InvalidOptions`](crate::Error::InvalidOptions) when the
/// query runs, rather than silently ignoring one of them.
///
/// # Deadlines and cancellation
///
/// [`timeout`](QueryOptions::timeout) bounds one execution's wall-clock time (pipeline
/// compilation and hash-join build work count against the budget; planning happened at
/// `prepare` time and does not); a run that exceeds it returns
/// [`Error::Timeout`](crate::Error::Timeout). [`cancel_token`](QueryOptions::cancel_token)
/// attaches a [`CancellationToken`] that any thread can trip, turning the run into
/// [`Error::Cancelled`](crate::Error::Cancelled). Both are polled cooperatively at batch
/// granularity by all three executors.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOptions {
    pub(crate) adaptive: bool,
    pub(crate) threads: usize,
    pub(crate) intersection_cache: bool,
    pub(crate) output_limit: Option<u64>,
    pub(crate) collect_tuples: bool,
    pub(crate) collect_limit: usize,
    pub(crate) timeout: Option<Duration>,
    pub(crate) cancel: Option<CancellationToken>,
    /// Internal: enable the executors' `COUNT(*)` bulk-count fast path. Set by the
    /// result-set layer when the prepared query is `RETURN COUNT(*)` and the plan's final
    /// operator is an E/I extension; never exposed to callers directly.
    pub(crate) count_tail: bool,
    pub(crate) profile: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            adaptive: false,
            threads: 1,
            intersection_cache: true,
            output_limit: None,
            collect_tuples: false,
            collect_limit: 1_000_000,
            timeout: None,
            cancel: None,
            count_tail: false,
            profile: false,
        }
    }
}

impl QueryOptions {
    /// Default options (identical to [`QueryOptions::default`]), ready for chaining.
    pub fn new() -> Self {
        Self::default()
    }

    // --- builder setters -------------------------------------------------------------------

    /// Use the adaptive executor (per-tuple query-vertex-ordering selection, paper Section 6).
    ///
    /// Incompatible with [`threads`](QueryOptions::threads)` > 1`; see the type-level docs on
    /// mode precedence.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Number of worker threads (1 = serial execution; 0 is treated as 1).
    ///
    /// Incompatible with [`adaptive`](QueryOptions::adaptive); see the type-level docs on mode
    /// precedence.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggle the E/I last-extension (intersection) cache (paper Section 3.1).
    pub fn intersection_cache(mut self, enabled: bool) -> Self {
        self.intersection_cache = enabled;
        self
    }

    /// Stop execution after roughly this many results (exact in serial modes; parallel workers
    /// stop at their next chunk boundary, so slightly more may be counted).
    pub fn limit(mut self, limit: u64) -> Self {
        self.output_limit = Some(limit);
        self
    }

    /// Remove a previously set output limit.
    pub fn no_limit(mut self) -> Self {
        self.output_limit = None;
        self
    }

    /// Collect result tuples into [`QueryResult::tuples`](crate::QueryResult::tuples), up to
    /// the [`collect_limit`](QueryOptions::collect_limit) cap.
    ///
    /// Collection buffers matches in memory; for unbounded result sets stream through a
    /// [`MatchSink`](crate::MatchSink) instead (`run_with_sink`).
    pub fn collect_tuples(mut self, collect: bool) -> Self {
        self.collect_tuples = collect;
        self
    }

    /// Cap on the number of tuples collected when
    /// [`collect_tuples`](QueryOptions::collect_tuples) is on (default one million). Matches
    /// beyond the cap are still counted.
    pub fn collect_limit(mut self, cap: usize) -> Self {
        self.collect_limit = cap;
        self
    }

    /// Bound one execution's wall-clock time. The deadline is armed when the run starts —
    /// pipeline compilation and hash-join build work count against it, but planning does not
    /// (it happened at `prepare` time, possibly amortized away by the plan cache) — and is
    /// polled cooperatively at batch granularity by every executor; a run that exceeds it
    /// returns [`Error::Timeout`](crate::Error::Timeout) instead of a truncated result.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Remove a previously set timeout.
    pub fn no_timeout(mut self) -> Self {
        self.timeout = None;
        self
    }

    /// Attach a [`CancellationToken`] the run will poll at batch granularity. Cancelling it
    /// (from any thread — the token is `Send + Sync` and cheap to clone) makes the run return
    /// [`Error::Cancelled`](crate::Error::Cancelled).
    pub fn cancel_token(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Collect a per-operator execution profile alongside the run, returned through
    /// [`RuntimeStats::profile`](crate::RuntimeStats::profile) (this is what
    /// [`PreparedQuery::profile`](crate::PreparedQuery::profile) and `PROFILE <query>` turn
    /// on). Off by default; when off the executors' stats are identical to an unprofiled
    /// run's.
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    // --- accessors -------------------------------------------------------------------------

    /// Whether the adaptive executor was requested.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// The configured worker-thread count.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Whether the intersection cache is enabled.
    pub fn uses_intersection_cache(&self) -> bool {
        self.intersection_cache
    }

    /// The configured output limit, if any.
    pub fn output_limit(&self) -> Option<u64> {
        self.output_limit
    }

    /// Whether result tuples will be collected into the query result.
    pub fn collects_tuples(&self) -> bool {
        self.collect_tuples
    }

    /// The tuple-collection cap.
    pub fn collection_cap(&self) -> usize {
        self.collect_limit
    }

    /// The configured wall-clock timeout, if any.
    pub fn timeout_duration(&self) -> Option<Duration> {
        self.timeout
    }

    /// The attached cancellation token, if any.
    pub fn cancellation_token(&self) -> Option<&CancellationToken> {
        self.cancel.as_ref()
    }

    /// Whether a per-operator profile will be collected.
    pub fn profiles(&self) -> bool {
        self.profile
    }

    /// Reject invalid option combinations (currently: `adaptive` together with multi-threaded
    /// execution).
    pub(crate) fn validate(&self) -> Result<(), crate::Error> {
        if self.adaptive && self.threads > 1 {
            return Err(crate::Error::InvalidOptions(format!(
                "adaptive execution is serial: adaptive(true) cannot be combined with \
                 threads({}); drop one of the two",
                self.threads
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_accessors_agree() {
        let opts = QueryOptions::new()
            .adaptive(true)
            .intersection_cache(false)
            .limit(7)
            .collect_tuples(true)
            .collect_limit(3);
        assert!(opts.is_adaptive());
        assert!(!opts.uses_intersection_cache());
        assert_eq!(opts.output_limit(), Some(7));
        assert!(opts.collects_tuples());
        assert_eq!(opts.collection_cap(), 3);
        assert_eq!(opts.no_limit().output_limit(), None);
    }

    #[test]
    fn zero_threads_means_serial() {
        assert_eq!(QueryOptions::new().threads(0).num_threads(), 1);
    }

    #[test]
    fn timeout_and_token_round_trip() {
        let token = CancellationToken::new();
        let opts = QueryOptions::new()
            .timeout(Duration::from_millis(250))
            .cancel_token(token.clone());
        assert_eq!(opts.timeout_duration(), Some(Duration::from_millis(250)));
        assert!(opts
            .cancellation_token()
            .is_some_and(|t| t.same_token(&token)));
        let cleared = opts.no_timeout();
        assert_eq!(cleared.timeout_duration(), None);
        assert!(QueryOptions::new().cancellation_token().is_none());
    }

    #[test]
    fn adaptive_plus_threads_is_invalid() {
        assert!(QueryOptions::new()
            .adaptive(true)
            .threads(4)
            .validate()
            .is_err());
        assert!(QueryOptions::new().adaptive(true).validate().is_ok());
        assert!(QueryOptions::new().threads(4).validate().is_ok());
    }
}
