//! Per-query execution options as a fluent builder.

/// Per-query execution settings, built fluently:
///
/// ```
/// use graphflow_core::QueryOptions;
/// let opts = QueryOptions::new().threads(4).limit(1000);
/// assert_eq!(opts.num_threads(), 4);
/// assert_eq!(opts.output_limit(), Some(1000));
/// ```
///
/// The default configuration is serial, fixed-plan execution with the intersection cache on,
/// no output limit and no tuple collection.
///
/// # Mode precedence
///
/// [`adaptive`](QueryOptions::adaptive) and [`threads`](QueryOptions::threads)` > 1` select
/// *different engines* (the per-tuple adaptive executor is inherently serial); requesting both
/// at once is rejected with [`Error::InvalidOptions`](crate::Error::InvalidOptions) when the
/// query runs, rather than silently ignoring one of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    pub(crate) adaptive: bool,
    pub(crate) threads: usize,
    pub(crate) intersection_cache: bool,
    pub(crate) output_limit: Option<u64>,
    pub(crate) collect_tuples: bool,
    pub(crate) collect_limit: usize,
    /// Internal: enable the executors' `COUNT(*)` bulk-count fast path. Set by the
    /// result-set layer when the prepared query is `RETURN COUNT(*)` and the plan's final
    /// operator is an E/I extension; never exposed to callers directly.
    pub(crate) count_tail: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            adaptive: false,
            threads: 1,
            intersection_cache: true,
            output_limit: None,
            collect_tuples: false,
            collect_limit: 1_000_000,
            count_tail: false,
        }
    }
}

impl QueryOptions {
    /// Default options (identical to [`QueryOptions::default`]), ready for chaining.
    pub fn new() -> Self {
        Self::default()
    }

    // --- builder setters -------------------------------------------------------------------

    /// Use the adaptive executor (per-tuple query-vertex-ordering selection, paper Section 6).
    ///
    /// Incompatible with [`threads`](QueryOptions::threads)` > 1`; see the type-level docs on
    /// mode precedence.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Number of worker threads (1 = serial execution; 0 is treated as 1).
    ///
    /// Incompatible with [`adaptive`](QueryOptions::adaptive); see the type-level docs on mode
    /// precedence.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggle the E/I last-extension (intersection) cache (paper Section 3.1).
    pub fn intersection_cache(mut self, enabled: bool) -> Self {
        self.intersection_cache = enabled;
        self
    }

    /// Stop execution after roughly this many results (exact in serial modes; parallel workers
    /// stop at their next chunk boundary, so slightly more may be counted).
    pub fn limit(mut self, limit: u64) -> Self {
        self.output_limit = Some(limit);
        self
    }

    /// Remove a previously set output limit.
    pub fn no_limit(mut self) -> Self {
        self.output_limit = None;
        self
    }

    /// Collect result tuples into [`QueryResult::tuples`](crate::QueryResult::tuples), up to
    /// the [`collect_limit`](QueryOptions::collect_limit) cap.
    ///
    /// Collection buffers matches in memory; for unbounded result sets stream through a
    /// [`MatchSink`](crate::MatchSink) instead (`run_with_sink`).
    pub fn collect_tuples(mut self, collect: bool) -> Self {
        self.collect_tuples = collect;
        self
    }

    /// Cap on the number of tuples collected when
    /// [`collect_tuples`](QueryOptions::collect_tuples) is on (default one million). Matches
    /// beyond the cap are still counted.
    pub fn collect_limit(mut self, cap: usize) -> Self {
        self.collect_limit = cap;
        self
    }

    // --- accessors -------------------------------------------------------------------------

    /// Whether the adaptive executor was requested.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// The configured worker-thread count.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Whether the intersection cache is enabled.
    pub fn uses_intersection_cache(&self) -> bool {
        self.intersection_cache
    }

    /// The configured output limit, if any.
    pub fn output_limit(&self) -> Option<u64> {
        self.output_limit
    }

    /// Whether result tuples will be collected into the query result.
    pub fn collects_tuples(&self) -> bool {
        self.collect_tuples
    }

    /// The tuple-collection cap.
    pub fn collection_cap(&self) -> usize {
        self.collect_limit
    }

    /// Reject invalid option combinations (currently: `adaptive` together with multi-threaded
    /// execution).
    pub(crate) fn validate(&self) -> Result<(), crate::Error> {
        if self.adaptive && self.threads > 1 {
            return Err(crate::Error::InvalidOptions(format!(
                "adaptive execution is serial: adaptive(true) cannot be combined with \
                 threads({}); drop one of the two",
                self.threads
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_accessors_agree() {
        let opts = QueryOptions::new()
            .adaptive(true)
            .intersection_cache(false)
            .limit(7)
            .collect_tuples(true)
            .collect_limit(3);
        assert!(opts.is_adaptive());
        assert!(!opts.uses_intersection_cache());
        assert_eq!(opts.output_limit(), Some(7));
        assert!(opts.collects_tuples());
        assert_eq!(opts.collection_cap(), 3);
        assert_eq!(opts.no_limit().output_limit(), None);
    }

    #[test]
    fn zero_threads_means_serial() {
        assert_eq!(QueryOptions::new().threads(0).num_threads(), 1);
    }

    #[test]
    fn adaptive_plus_threads_is_invalid() {
        assert!(QueryOptions::new()
            .adaptive(true)
            .threads(4)
            .validate()
            .is_err());
        assert!(QueryOptions::new().adaptive(true).validate().is_ok());
        assert!(QueryOptions::new().threads(4).validate().is_ok());
    }
}
