//! Typed result sets produced by `RETURN`-aware execution.

use graphflow_exec::{Row, RuntimeStats, Value};
use graphflow_graph::PropValue;

/// The typed rows produced by executing a query's `RETURN` clause
/// ([`PreparedQuery::execute`](crate::PreparedQuery::execute)).
///
/// One row per output: a projection produces one row per (possibly de-duplicated, sorted,
/// truncated) match, an aggregation one row per group — and a global aggregate like
/// `RETURN COUNT(*)` exactly one row, reachable through the scalar accessors. Cells are
/// [`Value`]s: `Some(PropValue)` for a present value (vertex variables surface as
/// [`PropValue::Int`] holding the data-vertex id), `None` for a missing property or an
/// aggregate over an empty input.
///
/// ```
/// use graphflow_core::GraphflowDB;
/// use graphflow_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(0, 2);
/// let db = GraphflowDB::from_graph(b.build());
/// let rs = db.query("(a)->(b), (b)->(c), (a)->(c) RETURN COUNT(*)").unwrap();
/// assert_eq!(rs.columns(), ["COUNT(*)"]);
/// assert_eq!(rs.scalar_count(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct ResultSet {
    pub(crate) columns: Vec<String>,
    pub(crate) rows: Vec<Row>,
    /// Runtime counters of the execution that produced these rows (actual i-cost,
    /// predicate drops, `bulk_counted_extensions` for the `COUNT(*)` fast path, ...).
    pub stats: RuntimeStats,
}

impl ResultSet {
    /// Column headers, one per `RETURN` item in declaration order (a lone `RETURN *` expands
    /// to one column per query vertex, named after the vertex).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The output rows. Aggregated rows arrive in a deterministic order: the explicit
    /// `ORDER BY` when present, ascending group-key order otherwise.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume the result set, keeping only the rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single cell of a 1×1 result (global aggregates like `RETURN COUNT(*)` or
    /// `RETURN AVG(a.age)`); `None` for any other shape.
    pub fn scalar(&self) -> Option<&Value> {
        match self.rows.as_slice() {
            [row] if row.len() == 1 => Some(&row[0]),
            _ => None,
        }
    }

    /// The scalar as a non-negative count (`RETURN COUNT(*)` and friends); `None` when the
    /// result is not a 1×1 non-negative integer.
    pub fn scalar_count(&self) -> Option<u64> {
        match self.scalar() {
            Some(Some(PropValue::Int(n))) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Serialize the whole result as a self-contained JSON object — the shape the HTTP wire
    /// protocol returns from `POST /query`:
    /// `{"columns": [...], "rows": [[cell, ...], ...], "row_count": n, "stats": {...}}`.
    /// Cells follow [`json::write_value`](crate::json::write_value): `null` for missing
    /// values, numbers for ints/floats, quoted escaped literals for strings.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 16);
        out.push_str("{\"columns\":[");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::quote(c));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                crate::json::write_value(&mut out, cell);
            }
            out.push(']');
        }
        let s = &self.stats;
        out.push_str(&format!(
            "],\"row_count\":{},\"stats\":{{\"output_count\":{},\"icost\":{},\
             \"intermediate_tuples\":{},\"elapsed_ns\":{}}}}}",
            self.rows.len(),
            s.output_count,
            s.icost,
            s.intermediate_tuples,
            s.elapsed.as_nanos(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors_demand_a_one_by_one_shape() {
        let one = ResultSet {
            columns: vec!["COUNT(*)".into()],
            rows: vec![vec![Some(PropValue::Int(7))]],
            stats: RuntimeStats::default(),
        };
        assert_eq!(one.scalar_count(), Some(7));
        assert_eq!(one.len(), 1);
        let wide = ResultSet {
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![Some(PropValue::Int(1)), None]],
            stats: RuntimeStats::default(),
        };
        assert_eq!(wide.scalar(), None);
        assert_eq!(wide.scalar_count(), None);
        let empty = ResultSet {
            columns: vec!["a".into()],
            rows: Vec::new(),
            stats: RuntimeStats::default(),
        };
        assert!(empty.is_empty());
        assert_eq!(empty.scalar(), None);
    }
}
