//! Hand-rolled JSON, shared by every component that speaks it.
//!
//! The workspace deliberately carries no serialization dependency, so the escape/number
//! writers that used to be duplicated between `QueryProfile::to_json` and the bench report
//! live here once, alongside a small recursive-descent parser used by the HTTP wire protocol
//! (`graphflow-server`) to read request bodies. The writers guarantee *valid* JSON: control
//! characters are `\u`-escaped and non-finite floats become `null` (JSON cannot carry
//! NaN/infinity).

use graphflow_graph::PropValue;

/// Append `s` to `out` with JSON string escaping applied — no surrounding quotes, so callers
/// can splice escaped fragments into larger literals.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` with JSON string escaping applied, without surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// `s` as a complete JSON string literal: escaped and quoted.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A JSON number in shortest-round-trip form; non-finite values (which JSON cannot carry)
/// become `null`.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A JSON number with six fixed decimals (the bench-report convention, kept stable so
/// plotting scripts can diff runs); non-finite values become `null`.
pub fn fmt_f64_fixed(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// Append one result cell to `out`: `null` for a missing value, a bare number for ints and
/// finite floats, `true`/`false` for booleans, a quoted escaped literal for strings.
pub fn write_value(out: &mut String, value: &Option<PropValue>) {
    match value {
        None => out.push_str("null"),
        Some(PropValue::Int(n)) => {
            out.push_str(&n.to_string());
        }
        Some(PropValue::Float(x)) => out.push_str(&fmt_f64(*x)),
        Some(PropValue::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
        Some(PropValue::Str(s)) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

/// A parsed JSON value. Object members keep their source order; duplicate keys keep the last
/// occurrence (matching what every mainstream parser does).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Member lookup on an object (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if this is a number with an exact `i64` value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(*x as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Recursion guard: JSON nested deeper than this is rejected instead of overflowing the
/// stack (the wire protocol never needs anything close to it).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Bulk-copy the run of plain bytes up to the next quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so any slice between ASCII delimiters is valid UTF-8.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.pos += 1; // past the last hex digit of the first unit
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                char::from_u32(combined).ok_or_else(|| self.err("bad codepoint"))?
                            } else if (0xdc00..0xe000).contains(&first) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(first).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Read four hex digits starting at `pos`, leaving `pos` on the **last** digit (callers
    /// advance past it).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape("\u{0001}"), "\\u0001");
        assert_eq!(quote("x\"y"), "\"x\\\"y\"");
    }

    #[test]
    fn numbers_reject_non_finite() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64_fixed(1.5), "1.500000");
        assert_eq!(fmt_f64_fixed(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn values_serialize_per_type() {
        let mut out = String::new();
        write_value(&mut out, &None);
        out.push(',');
        write_value(&mut out, &Some(PropValue::Int(-7)));
        out.push(',');
        write_value(&mut out, &Some(PropValue::Bool(true)));
        out.push(',');
        write_value(&mut out, &Some(PropValue::Str("a\"b".into())));
        assert_eq!(out, "null,-7,true,\"a\\\"b\"");
    }

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(
            r#"{"query": "(a)->(b)", "options": {"threads": 4, "timeout_ms": 250.0},
                "stream": true, "tags": ["x", null, -1.5e2]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("query").unwrap().as_str(), Some("(a)->(b)"));
        let opts = doc.get("options").unwrap();
        assert_eq!(opts.get("threads").unwrap().as_i64(), Some(4));
        assert_eq!(opts.get("timeout_ms").unwrap().as_i64(), Some(250));
        assert_eq!(doc.get("stream").unwrap().as_bool(), Some(true));
        let tags = doc.get("tags").unwrap().as_array().unwrap();
        assert_eq!(tags[0].as_str(), Some("x"));
        assert!(tags[1].is_null());
        assert_eq!(tags[2].as_f64(), Some(-150.0));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes_and_surrogate_pairs() {
        let v = Json::parse(r#""a\"\\\/\n\t\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"\\/\n\tA\u{1f600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "01x",
            "[1] trailing",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        // Round-trip: what the writers emit, the parser reads back.
        let v = Json::parse(&quote("line\nbreak \"quoted\"")).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak \"quoted\""));
    }

    #[test]
    fn duplicate_keys_keep_the_last_occurrence() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
