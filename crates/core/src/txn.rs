//! Write transactions: staged updates published as one new snapshot epoch.
//!
//! All mutation of a [`GraphflowDB`] funnels through a [`WriteTxn`]. A transaction holds the
//! database's single writer lock from [`begin_write`](GraphflowDB::begin_write) to
//! [`commit`](WriteTxn::commit) (writers are serialized; readers are never blocked), stages its
//! updates on a **private copy-on-write clone** of the current snapshot, and publishes the
//! staged snapshot as the database's new epoch in one atomic swap. Queries that started before
//! the commit keep running against the epoch they pinned; queries that start after it see every
//! update of the transaction — there is no in-between state, no matter how many updates the
//! transaction staged.
//!
//! Dropping a transaction without committing discards the staged epoch
//! ([`rollback`](WriteTxn::rollback) spells this out).

use crate::{persisted_counts, Error, GraphflowDB, WriterState};
use graphflow_graph::{
    EdgeLabel, GraphView as _, PropValue, Snapshot, Update, VertexId, VertexLabel,
};
use std::sync::{Arc, MutexGuard};

/// A catalogue maintenance action recorded while staging, applied under the catalogue write
/// lock at commit time.
enum CatOp {
    VertexInsert(VertexLabel),
    EdgeInsert(EdgeLabel, VertexLabel, VertexLabel),
    EdgeDelete(EdgeLabel, VertexLabel, VertexLabel),
}

/// An exclusive write transaction on a [`GraphflowDB`].
///
/// Created by [`GraphflowDB::begin_write`]; holds the database's writer lock until it is
/// committed or dropped, so at most one transaction is open at a time (a second `begin_write`
/// blocks). Updates staged through the mutation methods are visible to the transaction's own
/// [`snapshot`](WriteTxn::snapshot) (read-your-writes) but to no reader until
/// [`commit`](WriteTxn::commit) publishes them — atomically, as one new epoch.
///
/// ```
/// use graphflow_core::GraphflowDB;
/// use graphflow_graph::{EdgeLabel, GraphBuilder};
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let db = GraphflowDB::from_graph(b.build());
///
/// let mut txn = db.begin_write();
/// txn.insert_edge(0, 2, EdgeLabel(0));
/// // Not yet published: readers still see the two-edge graph.
/// assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), 0);
/// txn.commit();
/// assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), 1);
/// ```
pub struct WriteTxn<'db> {
    db: &'db GraphflowDB,
    /// The writer lock, held for the whole transaction (serializes writers; commit also uses
    /// it to update the staleness clock).
    guard: MutexGuard<'db, WriterState>,
    /// Private copy-on-write clone of the epoch the transaction started from.
    staged: Snapshot,
    cat_ops: Vec<CatOp>,
    /// Updates staged so far (the staleness-clock currency of the catalogue).
    ops: u64,
    /// The *effective* updates staged so far, in order — the write-ahead-log record commit
    /// appends before publishing. Only populated on a persistent database (`journaling`);
    /// no-op updates (duplicate edge inserts, deletes of missing edges, rejected property
    /// writes) are never journalled, so replay reproduces the staged state exactly.
    journal: Vec<Update>,
    journaling: bool,
}

impl std::fmt::Debug for WriteTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteTxn")
            .field("staged_version", &self.staged.version())
            .field("staged_updates", &self.ops)
            .finish_non_exhaustive()
    }
}

impl<'db> WriteTxn<'db> {
    pub(crate) fn begin(db: &'db GraphflowDB) -> Self {
        // Lock order matters: take the writer lock *first*, then read the current epoch —
        // only commit publishes, and commit runs under this same lock, so the clone below is
        // guaranteed to be the latest epoch.
        let guard = db.shared.writer.lock();
        let staged = db.shared.current.read().clone();
        let journaling = db.shared.storage.is_some();
        WriteTxn {
            db,
            guard,
            staged,
            cat_ops: Vec::new(),
            ops: 0,
            journal: Vec::new(),
            journaling,
        }
    }

    /// Record an effective update in the write-ahead journal (persistent databases only).
    fn journal_update(&mut self, update: impl FnOnce() -> Update) {
        if self.journaling {
            self.journal.push(update());
        }
    }

    /// The transaction's private view: the epoch it started from plus every update staged so
    /// far (read-your-writes). Cloning it keeps a cheap immutable copy of this intermediate
    /// state.
    pub fn snapshot(&self) -> &Snapshot {
        &self.staged
    }

    /// Number of updates staged so far.
    pub fn staged_updates(&self) -> u64 {
        self.ops
    }

    // --- staged mutations (mirror the `GraphflowDB` convenience wrappers) -------------------

    /// Stage a new vertex carrying `label`, returning its id.
    pub fn insert_vertex(&mut self, label: VertexLabel) -> VertexId {
        let v = self.staged.insert_vertex(label);
        self.cat_ops.push(CatOp::VertexInsert(label));
        self.journal_update(|| Update::InsertVertex { label });
        self.ops += 1;
        v
    }

    /// Stage the directed edge `src -> dst` carrying `label`. Unknown endpoints are created on
    /// demand with the default vertex label. Returns `false` (and stages nothing) when the
    /// edge already exists in the transaction's view.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, label: EdgeLabel) -> bool {
        let created = self.staged.ensure_vertex(src.max(dst));
        for _ in 0..created {
            self.cat_ops.push(CatOp::VertexInsert(VertexLabel(0)));
        }
        self.ops += created as u64;
        let inserted = self.staged.insert_edge(src, dst, label);
        if inserted {
            self.cat_ops.push(CatOp::EdgeInsert(
                label,
                self.staged.vertex_label(src),
                self.staged.vertex_label(dst),
            ));
            // One journal entry covers the on-demand endpoints too: replay re-runs
            // `ensure_vertex` before re-inserting the edge.
            self.journal_update(|| Update::InsertEdge { src, dst, label });
            self.ops += 1;
        }
        inserted
    }

    /// Stage the deletion of the directed edge `src -> dst` carrying `label`. Returns `false`
    /// (and stages nothing) when no such edge exists in the transaction's view.
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId, label: EdgeLabel) -> bool {
        if !self.staged.delete_edge(src, dst, label) {
            return false;
        }
        self.cat_ops.push(CatOp::EdgeDelete(
            label,
            self.staged.vertex_label(src),
            self.staged.vertex_label(dst),
        ));
        self.journal_update(|| Update::DeleteEdge { src, dst, label });
        self.ops += 1;
        true
    }

    /// Stage the typed property write `key = value` on vertex `v`. The column's type is fixed
    /// by its first value; conflicting writes return
    /// [`Error::Property`](crate::Error::Property).
    pub fn set_vertex_prop(
        &mut self,
        v: VertexId,
        key: &str,
        value: PropValue,
    ) -> Result<(), Error> {
        self.staged.set_vertex_prop(v, key, value.clone())?;
        self.journal_update(|| Update::SetVertexProp {
            v,
            key: key.to_string(),
            value,
        });
        self.ops += 1;
        Ok(())
    }

    /// Stage the typed property write `key = value` on the (existing) edge `src -> dst`
    /// carrying `label`.
    pub fn set_edge_prop(
        &mut self,
        src: VertexId,
        dst: VertexId,
        label: EdgeLabel,
        key: &str,
        value: PropValue,
    ) -> Result<(), Error> {
        self.staged
            .set_edge_prop(src, dst, label, key, value.clone())?;
        self.journal_update(|| Update::SetEdgeProp {
            src,
            dst,
            label,
            key: key.to_string(),
            value,
        });
        self.ops += 1;
        Ok(())
    }

    /// Stage a new vertex carrying `label` and an initial set of typed properties, returning
    /// its id. The vertex is staged even if a property write fails (the error reports the
    /// first failing write).
    pub fn insert_vertex_with_props(
        &mut self,
        label: VertexLabel,
        props: &[(&str, PropValue)],
    ) -> Result<VertexId, Error> {
        let v = self.insert_vertex(label);
        for (key, value) in props {
            self.set_vertex_prop(v, key, value.clone())?;
        }
        Ok(v)
    }

    /// Stage a batch of [`Update`]s in order, returning how many changed the graph (edge
    /// inserts of existing edges, deletes of missing edges, and property writes that fail
    /// their type/existence checks are no-ops). The whole batch becomes visible atomically at
    /// [`commit`](WriteTxn::commit).
    pub fn apply_batch(&mut self, updates: &[Update]) -> usize {
        let mut applied = 0usize;
        for u in updates {
            let changed = match u {
                Update::InsertVertex { label } => {
                    self.insert_vertex(*label);
                    true
                }
                Update::InsertEdge { src, dst, label } => self.insert_edge(*src, *dst, *label),
                Update::DeleteEdge { src, dst, label } => self.delete_edge(*src, *dst, *label),
                Update::SetVertexProp { v, key, value } => {
                    self.set_vertex_prop(*v, key, value.clone()).is_ok()
                }
                Update::SetEdgeProp {
                    src,
                    dst,
                    label,
                    key,
                    value,
                } => self
                    .set_edge_prop(*src, *dst, *label, key, value.clone())
                    .is_ok(),
            };
            if changed {
                applied += 1;
            }
        }
        applied
    }

    // --- commit / rollback ------------------------------------------------------------------

    /// Publish the staged snapshot as the database's new epoch — one atomic swap — and return
    /// the published epoch's version. Also applies the catalogue's incremental count
    /// maintenance, advances the staleness clock (bumping the plan-cache statistics version
    /// when it crosses the threshold) and runs auto-compaction when the delta store has grown
    /// past its threshold.
    ///
    /// On a persistent database the staged updates are write-ahead logged (durably, per the
    /// configured [`Durability`](crate::Durability) policy) *before* the epoch becomes
    /// visible to readers; **panics** if that logging fails — use
    /// [`try_commit`](WriteTxn::try_commit) for the fallible spelling. In-memory databases
    /// never panic here.
    pub fn commit(self) -> u64 {
        match self.try_commit() {
            Ok(version) => version,
            Err(e) => panic!("write-ahead logging failed at commit: {e} ({e:?})"),
        }
    }

    /// Fallible [`commit`](WriteTxn::commit). On `Err` the error is a storage failure:
    ///
    /// * [`Error::Storage`](crate::Error::Storage) from the WAL append — **nothing was
    ///   published**; readers still see the pre-transaction epoch, exactly as if the
    ///   transaction had been rolled back (the append itself is rolled back too, so the log
    ///   holds no frame for the unpublished epoch).
    /// * [`Error::Storage`](crate::Error::Storage) from the checkpoint an auto-compaction
    ///   piggybacks on — the commit **was** published (and its WAL frame is durable); only
    ///   the snapshot+WAL-truncate step failed and will be retried by the next compaction or
    ///   [`checkpoint`](crate::GraphflowDB::checkpoint).
    pub fn try_commit(mut self) -> Result<u64, Error> {
        let shared = &self.db.shared;
        let mut checkpoint_after = None;
        if self.ops > 0 {
            // Write-ahead: the batch must be durable (to the configured policy) before any
            // reader can observe the epoch it produces.
            if let Some(storage) = &shared.storage {
                if !self.journal.is_empty() {
                    storage
                        .lock()
                        .log_commit(self.staged.version(), &self.journal)?;
                }
            }
            self.guard.updates_since_stats += self.ops;
            // Republish the snapshot to the catalogue only at refresh points and compactions:
            // handing it a clone on *every* commit would pin the delta-store `Arc` and turn
            // each subsequent staging pass into a deep copy of all pending deltas. The
            // catalogue's *exact* counts are maintained incrementally below and never lag;
            // only its *sampled* statistics see a snapshot up to one staleness window old —
            // exactly the drift tolerance `refresh_after` already grants them.
            let mut republish = false;
            if self.guard.updates_since_stats >= shared.staleness_threshold {
                shared
                    .stats_version
                    .store(self.staged.version(), std::sync::atomic::Ordering::Release);
                self.guard.updates_since_stats = 0;
                republish = true;
            }
            let delta = self.staged.delta();
            let mut compacted = false;
            if delta.overlay_edges() + delta.num_new_vertices() >= shared.compact_threshold {
                self.staged.compact();
                republish = true;
                compacted = true;
            }
            // One catalogue revision per commit: copy-on-write through `Arc::make_mut`, so
            // planners and adaptive runs holding the previous revision are never blocked and
            // never observe a half-applied batch (the copy is only paid while such a reader
            // exists).
            {
                let mut slot = shared.catalogue.write();
                let catalogue = Arc::make_mut(&mut slot);
                for op in self.cat_ops.drain(..) {
                    match op {
                        CatOp::VertexInsert(label) => catalogue.record_vertex_insert(label),
                        CatOp::EdgeInsert(el, src, dst) => {
                            catalogue.record_edge_insert(el, src, dst)
                        }
                        CatOp::EdgeDelete(el, src, dst) => {
                            catalogue.record_edge_delete(el, src, dst)
                        }
                    }
                }
                if republish {
                    catalogue.set_snapshot(self.staged.clone());
                }
                // Counts are exported *after* the cat-op drain so the snapshot the piggyback
                // checkpoint writes carries this very transaction's maintenance.
                if compacted && shared.storage.is_some() {
                    checkpoint_after = Some(persisted_counts(catalogue));
                }
            }
        }
        let version = self.staged.version();
        // The publication point: readers pinning a snapshot from here on see every staged
        // update; in-flight queries keep the epoch they already pinned.
        *shared.current.write() = self.staged.clone();
        shared
            .metrics
            .txn_commits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Compaction doubles as a checkpoint: persist the freshly folded CSR and truncate
        // the WAL. After the publication point, so a failure here cannot un-publish the
        // commit — the WAL still holds everything the lost snapshot would have folded.
        if let (Some(counts), Some(storage)) = (checkpoint_after, &shared.storage) {
            let started = std::time::Instant::now();
            storage
                .lock()
                .checkpoint(self.staged.base(), version, &counts)?;
            shared.metrics.record_checkpoint(started.elapsed());
        }
        Ok(version)
    }

    /// Discard every staged update (equivalent to dropping the transaction). Readers never
    /// observed any of them.
    pub fn rollback(self) {}
}
