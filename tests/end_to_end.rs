//! Cross-crate integration tests: every engine and every execution mode in the workspace must
//! agree on the answer of every benchmark query, on several dataset profiles.

use graphflow_baselines::{backtracking_count, bj_engine_count, BacktrackOptions, BjEngineOptions};
use graphflow_catalog::count_matches;
use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_datasets::Dataset;
use graphflow_plan::ghd::{GhdPlanner, OrderingPolicy};
use graphflow_query::patterns;

/// Small scale so the whole suite stays fast.
const SCALE: f64 = 0.08;

#[test]
fn all_engines_agree_on_benchmark_queries() {
    for dataset in [Dataset::Amazon, Dataset::Epinions] {
        let graph = dataset.generate(SCALE);
        let db = GraphflowDB::with_config(graph.clone(), Default::default());
        // Q7/Q14 (5- and 7-cliques) and Q12/Q13 are heavier; keep the cross-engine sweep to the
        // queries every baseline finishes quickly at this scale.
        for j in [1usize, 2, 3, 4, 5, 6, 8, 10, 11] {
            let q = patterns::benchmark_query(j);
            let expected = count_matches(&graph, &q);

            let fixed = db.run_query(&q, QueryOptions::default()).unwrap();
            assert_eq!(
                fixed.count,
                expected,
                "Q{j} on {} (optimizer plan)",
                dataset.name()
            );

            let adaptive = db
                .run_query(&q, QueryOptions::new().adaptive(true))
                .unwrap();
            assert_eq!(
                adaptive.count,
                expected,
                "Q{j} on {} (adaptive)",
                dataset.name()
            );

            let parallel = db.run_query(&q, QueryOptions::new().threads(4)).unwrap();
            assert_eq!(
                parallel.count,
                expected,
                "Q{j} on {} (parallel)",
                dataset.name()
            );

            let bt = backtracking_count(&graph, &q, BacktrackOptions::default());
            assert_eq!(bt, expected, "Q{j} on {} (backtracking)", dataset.name());

            if j != 6 {
                // The naive BJ engine materialises open cliques; skip the 4-clique for speed.
                let bj = bj_engine_count(&graph, &q, BjEngineOptions::default());
                match bj.count() {
                    Some(count) => {
                        assert_eq!(count, expected, "Q{j} on {} (BJ engine)", dataset.name())
                    }
                    // Q10 (two vertex-disjoint triangles sharing a bridge) blows past the
                    // engine's intermediate cap on the denser profiles — that abort is its
                    // documented behaviour, mirroring the paper's timeout columns. Every
                    // other query must complete and agree.
                    None => assert_eq!(j, 10, "only Q10 may abort (Q{j} did)"),
                }
            }
        }
    }
}

#[test]
fn ghd_plans_agree_with_reference_counts() {
    let graph = Dataset::Google.generate(SCALE);
    let db = GraphflowDB::with_config(graph.clone(), Default::default());
    let catalogue = db.catalogue();
    let planner = GhdPlanner::new(&catalogue);
    for j in [1usize, 3, 5, 8] {
        let q = patterns::benchmark_query(j);
        let expected = count_matches(&graph, &q);
        for policy in [
            OrderingPolicy::Lexicographic,
            OrderingPolicy::BestCost,
            OrderingPolicy::WorstCost,
        ] {
            let plan = planner.plan(&q, policy).expect("EH plan exists");
            let result = db.run_plan(&plan, QueryOptions::default()).unwrap();
            assert_eq!(result.count, expected, "Q{j} with {policy:?}");
        }
    }
}

#[test]
fn labelled_workloads_agree_across_engines() {
    let graph = Dataset::Amazon.generate(SCALE);
    for labels in [2u16, 3] {
        let labelled = graphflow_datasets::with_random_edge_labels(&graph, labels, 7);
        let db = GraphflowDB::with_config(labelled.clone(), Default::default());
        for j in [1usize, 3, 4, 8] {
            let q = patterns::label_query_edges_randomly(&patterns::benchmark_query(j), labels, 11);
            let expected = count_matches(&labelled, &q);
            let result = db.run_query(&q, QueryOptions::default()).unwrap();
            assert_eq!(result.count, expected, "Q{j} with {labels} labels");
            let bt = backtracking_count(&labelled, &q, BacktrackOptions::default());
            assert_eq!(bt, expected, "Q{j} with {labels} labels (backtracking)");
        }
    }
}

#[test]
fn optimizer_pick_is_never_worse_than_four_times_the_best_plan_cost() {
    // A self-consistency check in the spirit of the Section 8.2 summary: on the small profiles
    // the optimizer's *measured* runtime proxy (actual i-cost) should not be far from the best
    // spectrum plan's.
    use graphflow_plan::spectrum::{enumerate_spectrum, SpectrumLimits};
    let graph = Dataset::Epinions.generate(SCALE);
    let db = GraphflowDB::with_config(graph.clone(), Default::default());
    let model = *graphflow_plan::dp::DpOptimizer::new(&db.catalogue()).cost_model();
    for j in [1usize, 3, 4] {
        let q = patterns::benchmark_query(j);
        let chosen = db.plan(&q).unwrap();
        let chosen_icost = db
            .run_plan(&chosen, QueryOptions::default())
            .unwrap()
            .stats
            .icost;
        let spectrum = enumerate_spectrum(&q, &db.catalogue(), &model, SpectrumLimits::default());
        let best_icost = spectrum
            .iter()
            .map(|sp| {
                db.run_plan(&sp.plan, QueryOptions::default())
                    .unwrap()
                    .stats
                    .icost
            })
            .min()
            .unwrap_or(0);
        assert!(
            chosen_icost <= best_icost.max(1) * 4,
            "Q{j}: chosen i-cost {chosen_icost} vs best {best_icost}"
        );
    }
}

#[test]
fn output_limits_and_tuple_collection_work_end_to_end() {
    let graph = Dataset::Epinions.generate(SCALE);
    let db = GraphflowDB::with_config(graph.clone(), Default::default());
    let q = patterns::asymmetric_triangle();
    let full = db.run_query(&q, QueryOptions::default()).unwrap();
    let limited = db.run_query(&q, QueryOptions::new().limit(5)).unwrap();
    assert!(limited.count <= 5.min(full.count));
    let collected = db
        .run_query(
            &q,
            QueryOptions::new().collect_tuples(true).collect_limit(10),
        )
        .unwrap();
    for t in &collected.tuples {
        assert!(graph.has_edge(t[0], t[1], graphflow_graph::EdgeLabel(0)));
        assert!(graph.has_edge(t[1], t[2], graphflow_graph::EdgeLabel(0)));
        assert!(graph.has_edge(t[0], t[2], graphflow_graph::EdgeLabel(0)));
    }
}
