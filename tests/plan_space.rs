//! Plan-space integration tests: the plan shapes highlighted in the paper's Figures 1 and 10
//! exist in our plan space, satisfy the projection constraint, and execute correctly.

use graphflow_catalog::{count_matches, Catalogue};
use graphflow_datasets::Dataset;
use graphflow_exec::execute;
use graphflow_plan::cost::CostModel;
use graphflow_plan::plan::{Plan, PlanClass, PlanNode};
use graphflow_plan::spectrum::{enumerate_spectrum, SpectrumLimits};
use graphflow_plan::wco::wco_node_for_ordering;
use graphflow_query::patterns;

const SCALE: f64 = 0.08;

/// Figure 1c: the diamond-X hybrid plan that joins the two triangles on (a2, a3).
#[test]
fn figure_1c_hybrid_plan_exists_and_is_correct() {
    let graph = Dataset::Amazon.generate(SCALE);
    let q = patterns::diamond_x();
    let left = wco_node_for_ordering(&q, &[1, 2, 0]).unwrap(); // triangle a2 a3 a1
    let right = wco_node_for_ordering(&q, &[1, 2, 3]).unwrap(); // triangle a2 a3 a4
    let join = PlanNode::hash_join(&q, left, right).expect("the Figure 1c join is valid");
    let plan = Plan::new(q.clone(), join, 0.0);
    assert_eq!(plan.class(), PlanClass::Hybrid);
    assert_eq!(execute(&graph, &plan).count, count_matches(&graph, &q));
}

/// Figure 1d: the 6-cycle hybrid plan that joins two 3-paths and closes the cycle with an
/// intersection — an E/I *after* a binary join, which no GHD-based plan can express.
#[test]
fn figure_1d_non_ghd_plan_exists_and_is_correct() {
    let graph = Dataset::Amazon.generate(SCALE);
    let q = patterns::benchmark_query(12); // 6-cycle over a1..a6
                                           // Left 3-path a1-a2-a3, right 3-path a3-a4-a5 (sharing a3), joined, then extended to a6 by
                                           // intersecting the adjacency lists of a5 and a1.
    let left = wco_node_for_ordering(&q, &[0, 1, 2]).unwrap();
    let right = wco_node_for_ordering(&q, &[2, 3, 4]).unwrap();
    let join = PlanNode::hash_join(&q, left, right).expect("path join is valid");
    let full = PlanNode::extend(&q, join, 5).expect("closing intersection is valid");
    assert!(full.has_hash_join() && full.has_multiway_intersection());
    let plan = Plan::new(q.clone(), full, 0.0);
    assert_eq!(plan.class(), PlanClass::Hybrid);
    assert_eq!(execute(&graph, &plan).count, count_matches(&graph, &q));
}

/// Figure 10: the Q9 plan that computes two triangles, joins them, then closes with a 2-way
/// intersection.
#[test]
fn figure_10_plan_for_q9_is_correct() {
    let graph = Dataset::Epinions.generate(SCALE);
    let q = patterns::benchmark_query(9);
    let left = wco_node_for_ordering(&q, &[0, 1, 2]).unwrap(); // triangle a1 a2 a3
    let right = wco_node_for_ordering(&q, &[2, 3, 4]).unwrap(); // triangle a3 a4 a5
    let join = PlanNode::hash_join(&q, left, right).expect("triangle join is valid");
    let full = PlanNode::extend(&q, join, 5).expect("final 2-way intersection");
    match &full {
        PlanNode::Extend(e) => assert_eq!(e.descriptors.len(), 2),
        _ => unreachable!(),
    }
    let plan = Plan::new(q.clone(), full, 0.0);
    assert_eq!(execute(&graph, &plan).count, count_matches(&graph, &q));
}

/// Section 4.1: the projection constraint rejects plans that drop a closing edge (the P2 plan of
/// Figure 3), and rejects BJ plans that build open triangles.
#[test]
fn projection_constraint_prunes_open_triangle_joins() {
    let q = patterns::diamond_x();
    // Open-triangle BJ plan: join edge a1->a2 with edge a1->a3 (fine), then join with a2->a4 ...
    // the offending step is joining {a1,a2,a3} (as two edges, no a2->a3) — our plan nodes cannot
    // even represent that state because each node is labelled with a *projection*, which always
    // includes a2->a3. What we can check: a join whose union misses a query edge is rejected.
    let tri = wco_node_for_ordering(&q, &[0, 1, 2]).unwrap();
    let tail = PlanNode::scan(q.edges()[3]); // a2->a4
    assert!(
        PlanNode::hash_join(&q, tri, tail).is_none(),
        "join covering all vertices but missing the a3->a4 edge must be rejected"
    );
}

/// Every plan in the spectrum of every small benchmark query returns the same count.
#[test]
fn every_spectrum_plan_counts_the_same() {
    let graph = Dataset::Google.generate(SCALE);
    let cat = Catalogue::with_defaults(graph.clone());
    let model = CostModel::default();
    for j in [1usize, 3, 4, 5, 8, 11] {
        let q = patterns::benchmark_query(j);
        let expected = count_matches(&graph, &q);
        let spectrum = enumerate_spectrum(
            &q,
            &cat,
            &model,
            SpectrumLimits {
                max_plans_per_subset: 16,
                max_plans_per_class: 12,
            },
        );
        assert!(!spectrum.is_empty(), "Q{j} spectrum is empty");
        for sp in &spectrum {
            assert_eq!(
                execute(&graph, &sp.plan).count,
                expected,
                "Q{j} plan {}",
                sp.plan.root.fingerprint()
            );
        }
    }
}

/// The paper's Table 1 claim about plan-space coverage: cliques admit only WCO plans, acyclic
/// queries admit BJ plans, queries with vertex-disjoint cycles admit hybrid plans.
#[test]
fn spectrum_classes_match_query_shapes() {
    use graphflow_plan::spectrum::summarize;
    let graph = Dataset::Epinions.generate(SCALE);
    let cat = Catalogue::with_defaults(graph.clone());
    let model = CostModel::default();
    let limits = SpectrumLimits::default();

    let clique = summarize(&enumerate_spectrum(
        &patterns::benchmark_query(6),
        &cat,
        &model,
        limits,
    ));
    assert!(clique.num_wco > 0 && clique.num_bj == 0 && clique.num_hybrid == 0);

    let acyclic = summarize(&enumerate_spectrum(
        &patterns::benchmark_query(13),
        &cat,
        &model,
        limits,
    ));
    assert!(acyclic.num_bj > 0);

    let two_cycles = summarize(&enumerate_spectrum(
        &patterns::benchmark_query(8),
        &cat,
        &model,
        limits,
    ));
    assert!(two_cycles.num_hybrid > 0 && two_cycles.num_wco > 0);
}

// ---------------------------------------------------------------------------------------------
// Differential harness: every enumerated bushy/hybrid plan for the 5-6-vertex benchmark
// queries must produce byte-identical results to a serial WCO oracle — across the serial,
// adaptive and parallel executors, on both the frozen CSR and a dirty (mid-update) snapshot.
// ---------------------------------------------------------------------------------------------

use graphflow_rs::graph::EdgeLabel;
use graphflow_rs::{GraphflowDB, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sorted result tuples of `plan` under `options` (tuples are normalised to query-vertex
/// order by the executor, so they are directly comparable across plan shapes).
fn sorted_tuples(db: &GraphflowDB, plan: &Plan, options: QueryOptions) -> Vec<Vec<u32>> {
    let out = db
        .run_plan(plan, options.collect_tuples(true).collect_limit(usize::MAX))
        .expect("plan executes");
    let mut tuples = out.tuples;
    tuples.sort_unstable();
    tuples
}

/// A random burst of structural updates leaving the snapshot dirty (deltas unfrozen).
fn dirty_up(db: &GraphflowDB, rng: &mut StdRng) {
    let n = db.snapshot().base().num_vertices() as u32;
    for _ in 0..12 {
        if rng.gen_bool(0.6) {
            db.insert_edge(rng.gen_range(0..n), rng.gen_range(0..n), EdgeLabel(0));
        } else {
            let edges = db.graph().edges().to_vec();
            if !edges.is_empty() {
                let (s, d, l) = edges[rng.gen_range(0..edges.len())];
                db.delete_edge(s, d, l);
            }
        }
    }
    assert!(
        db.snapshot().has_pending_deltas(),
        "updates left the snapshot dirty"
    );
}

#[test]
fn every_bushy_and_hybrid_plan_matches_the_serial_wco_oracle() {
    // Unoptimized tuple collection over 6-vertex spectra is slow; debug builds keep the same
    // harness on a smaller graph and spectrum so the full suite stays fast, while release (CI)
    // covers every query and a wider cap.
    let (scale, limits, queries): (f64, SpectrumLimits, &[usize]) = if cfg!(debug_assertions) {
        (
            0.02,
            SpectrumLimits {
                max_plans_per_subset: 6,
                max_plans_per_class: 4,
            },
            &[8, 12],
        )
    } else {
        (
            0.05,
            SpectrumLimits {
                max_plans_per_subset: 8,
                max_plans_per_class: 6,
            },
            &[8, 9, 11, 12],
        )
    };
    let db = GraphflowDB::with_config(Dataset::Amazon.generate(scale), Default::default());
    let model = CostModel::default();
    let mut rng = StdRng::seed_from_u64(0xB005);
    let mut bushy_checked = 0usize;

    // 5-6-vertex benchmark queries whose spectra contain hash-join plans: Q8 (two triangles
    // sharing a vertex), Q9 (Q8 plus a closing vertex), Q11 (acyclic), Q12 (6-cycle).
    for &j in queries {
        let q = patterns::benchmark_query(j);
        assert!((5..=6).contains(&q.num_vertices()));
        let cat = db.catalogue();
        let spectrum = enumerate_spectrum(&q, &cat, &model, limits);
        let oracle = spectrum
            .iter()
            .find(|sp| sp.class == PlanClass::Wco)
            .expect("every benchmark query has a WCO plan")
            .plan
            .clone();

        let mut join_plans: Vec<Plan> = spectrum
            .iter()
            .filter(|sp| sp.plan.root.has_hash_join())
            .map(|sp| sp.plan.clone())
            .collect();
        assert!(!join_plans.is_empty(), "Q{j} spectrum has join plans");
        if j == 12 {
            // Guarantee a *bushy* tree (join of joins) is covered even if the capped spectrum
            // holds only linear join trees: join the 3-paths a1a2a3 and a3a4a5 built as joins
            // of single edges, then close the cycle onto a6.
            let scan = |src: usize| {
                PlanNode::scan(
                    *q.edges()
                        .iter()
                        .find(|e| e.src == src)
                        .expect("cycle edge exists"),
                )
            };
            let left = PlanNode::hash_join(&q, scan(0), scan(1)).expect("share a2");
            let right = PlanNode::hash_join(&q, scan(2), scan(3)).expect("share a4");
            let joined = PlanNode::hash_join(&q, left, right).expect("share a3");
            let full = PlanNode::extend(&q, joined, 5).expect("close the cycle");
            assert!(full.has_bushy_join());
            join_plans.push(Plan::new(q.clone(), full, 0.0));
        }

        for phase in ["frozen", "dirty"] {
            if phase == "dirty" {
                dirty_up(&db, &mut rng);
            }
            let expected = sorted_tuples(&db, &oracle, QueryOptions::new());
            for plan in &join_plans {
                if plan.root.has_bushy_join() {
                    bushy_checked += 1;
                }
                for (name, options) in [
                    ("serial", QueryOptions::new()),
                    ("adaptive", QueryOptions::new().adaptive(true)),
                    ("parallel", QueryOptions::new().threads(4)),
                ] {
                    assert_eq!(
                        sorted_tuples(&db, plan, options),
                        expected,
                        "Q{j} ({phase}): {name} run of {} diverges from the serial WCO oracle",
                        plan.root.fingerprint()
                    );
                }
            }
        }
    }
    assert!(
        bushy_checked > 0,
        "at least one bushy join tree was covered"
    );
}
