//! Differential tests for `RETURN`-clause streaming aggregation.
//!
//! The executable property of the aggregation subsystem: **folding aggregates incrementally
//! over the match stream (and merging thread-local partials at the parallel barrier) must
//! produce exactly what a naive collect-then-aggregate evaluation produces.** This harness
//! checks that against an independent batch oracle:
//!
//! * random property graphs (float properties drawn from dyadic rationals, so float sums are
//!   exact and independent of fold/merge order),
//! * random `RETURN` clauses — projections, `DISTINCT`, grouped `COUNT`/`SUM`/`MIN`/`MAX`/
//!   `AVG` (with and without `DISTINCT` operands), `ORDER BY`, `LIMIT`, top-K — over random
//!   patterns with random `WHERE` clauses,
//! * executed by all three executors (serial, adaptive, parallel with thread-local partial
//!   aggregates),
//! * compared against *collect every match tuple, then aggregate in one batch*,
//! * on frozen CSRs and on dirty snapshots mid-way through random update sequences.
//!
//! A final test pins the acceptance criterion for the `COUNT(*)` fast path: identical counts
//! across executors with `bulk_counted_extensions > 0`, i.e. no per-match tuple allocation.

use graphflow_rs::core::GraphSnapshot;
use graphflow_rs::graph::{EdgeLabel, GraphBuilder, GraphView as _, PropValue, VertexLabel};
use graphflow_rs::query::returns::{AggFunc, ReturnClause, ReturnExpr, SortDir};
use graphflow_rs::query::QueryGraph;
use graphflow_rs::{GraphflowDB, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

type Row = Vec<Option<PropValue>>;

/// A dyadic rational in [0, 1): exactly representable, so sums are order-independent.
fn rand_float(rng: &mut StdRng) -> f64 {
    rng.gen_range(0u32..64) as f64 / 64.0
}

struct Template {
    pattern: &'static str,
    vertex_vars: &'static [&'static str],
    edge_vars: &'static [&'static str],
}

const TEMPLATES: &[Template] = &[
    Template {
        pattern: "(a)-[e1]->(b)",
        vertex_vars: &["a", "b"],
        edge_vars: &["e1"],
    },
    Template {
        pattern: "(a)-[e1]->(b), (b)-[e2]->(c)",
        vertex_vars: &["a", "b", "c"],
        edge_vars: &["e1", "e2"],
    },
    Template {
        pattern: "(a)-[e1]->(b), (b)-[e2]->(c), (a)-[e3]->(c)",
        vertex_vars: &["a", "b", "c"],
        edge_vars: &["e1", "e2", "e3"],
    },
    Template {
        pattern: "(a)-[e1]->(b), (a)-[e2]->(c), (b)-[e3]->(c), (b)-[e4]->(d), (c)-[e5]->(d)",
        vertex_vars: &["a", "b", "c", "d"],
        edge_vars: &["e1", "e2", "e3", "e4", "e5"],
    },
];

/// Random property graph: `age` (int, gappy), `score` (dyadic float, gappy) on vertices,
/// `w` (dyadic float, gappy) on edges.
fn random_db(rng: &mut StdRng) -> GraphflowDB {
    let n: u32 = rng.gen_range(20u32..40);
    let m = rng.gen_range(2 * n..3 * n);
    let mut b = GraphBuilder::with_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            b.add_edge(s, d);
        }
    }
    for v in 0..n {
        if rng.gen_bool(0.8) {
            b.set_vertex_prop(v, "age", PropValue::Int(rng.gen_range(0u32..8) as i64))
                .unwrap();
        }
        if rng.gen_bool(0.7) {
            b.set_vertex_prop(v, "score", PropValue::Float(rand_float(rng)))
                .unwrap();
        }
    }
    let edges: Vec<_> = b.clone().build().edges().to_vec();
    for (s, d, l) in edges {
        if rng.gen_bool(0.8) {
            b.set_edge_prop(s, d, l, "w", PropValue::Float(rand_float(rng)))
                .unwrap();
        }
    }
    GraphflowDB::from_graph(b.build())
}

/// A random `RETURN` item operand, in query text.
fn random_operand(rng: &mut StdRng, t: &Template) -> String {
    match rng.gen_range(0u32..4) {
        0 => t.vertex_vars[rng.gen_range(0..t.vertex_vars.len())].to_string(),
        1 => format!(
            "{}.age",
            t.vertex_vars[rng.gen_range(0..t.vertex_vars.len())]
        ),
        2 => format!(
            "{}.score",
            t.vertex_vars[rng.gen_range(0..t.vertex_vars.len())]
        ),
        _ => format!("{}.w", t.edge_vars[rng.gen_range(0..t.edge_vars.len())]),
    }
}

/// A random `RETURN` clause in query text: a projection or a (possibly grouped) aggregation,
/// with random `DISTINCT` / `ORDER BY` / `LIMIT` modifiers.
fn random_return(rng: &mut StdRng, t: &Template) -> String {
    let aggregate = rng.gen_bool(0.6);
    let mut items: Vec<String> = Vec::new();
    if aggregate {
        for _ in 0..rng.gen_range(0usize..2) {
            items.push(random_operand(rng, t)); // group keys
        }
        for _ in 0..rng.gen_range(1usize..3) {
            let distinct = if rng.gen_bool(0.3) { "DISTINCT " } else { "" };
            let item = match rng.gen_range(0u32..5) {
                0 if distinct.is_empty() => "COUNT(*)".to_string(),
                0 | 1 => format!("COUNT({distinct}{})", random_operand(rng, t)),
                2 => format!("SUM({distinct}{})", random_operand(rng, t)),
                3 => format!("MIN({distinct}{})", random_operand(rng, t)),
                _ => format!("AVG({distinct}{})", random_operand(rng, t)),
            };
            items.push(item);
        }
    } else {
        let distinct = if rng.gen_bool(0.4) { "DISTINCT " } else { "" };
        for _ in 0..rng.gen_range(1usize..3) {
            items.push(random_operand(rng, t));
        }
        items.dedup();
        let mut clause = format!("RETURN {distinct}{}", items.join(", "));
        if rng.gen_bool(0.5) {
            let dir = if rng.gen_bool(0.5) { " DESC" } else { "" };
            clause.push_str(&format!(
                " ORDER BY {}{dir}",
                items[rng.gen_range(0..items.len())]
            ));
            if rng.gen_bool(0.7) {
                clause.push_str(&format!(" LIMIT {}", rng.gen_range(1u32..8)));
            }
        }
        return clause;
    }
    let mut clause = format!("RETURN {}", items.join(", "));
    if rng.gen_bool(0.4) {
        let dir = if rng.gen_bool(0.5) { " DESC" } else { "" };
        clause.push_str(&format!(
            " ORDER BY {}{dir}",
            items[rng.gen_range(0..items.len())]
        ));
        if rng.gen_bool(0.5) {
            clause.push_str(&format!(" LIMIT {}", rng.gen_range(1u32..5)));
        }
    }
    clause
}

// --- the batch oracle -----------------------------------------------------------------------

fn extract(
    snap: &GraphSnapshot,
    q: &QueryGraph,
    expr: &ReturnExpr,
    t: &[u32],
) -> Option<PropValue> {
    match expr {
        ReturnExpr::Star => None,
        ReturnExpr::Vertex(v) => Some(PropValue::Int(t[*v] as i64)),
        ReturnExpr::VertexProp(v, key) => snap.vertex_prop(t[*v], key),
        ReturnExpr::EdgeProp(e, key) => {
            let edge = q.edges()[*e];
            snap.edge_prop(t[edge.src], t[edge.dst], edge.label, key)
        }
    }
}

/// The same value comparison the engine folds MIN/MAX with: numeric coercion first, canonical
/// total order for incomparable types — and again as the tiebreak when coercion calls two
/// distinct values equal (`Int(3)` vs `Float(3.0)`), so results are fold-order independent.
fn val_cmp(a: &PropValue, b: &PropValue) -> Ordering {
    match a.compare(b) {
        Some(Ordering::Equal) | None => a.cmp(b),
        Some(ord) => ord,
    }
}

fn batch_agg(
    func: AggFunc,
    distinct: bool,
    star: bool,
    mut values: Vec<Option<PropValue>>,
) -> Option<PropValue> {
    if star {
        return Some(PropValue::Int(values.len() as i64));
    }
    let mut present: Vec<PropValue> = values.drain(..).flatten().collect();
    if distinct {
        let mut uniq: Vec<PropValue> = Vec::new();
        for v in present {
            if !uniq.contains(&v) {
                uniq.push(v);
            }
        }
        present = uniq;
    }
    match func {
        AggFunc::Count => Some(PropValue::Int(present.len() as i64)),
        AggFunc::Sum => {
            let mut int = 0i64;
            let mut float = 0.0f64;
            let mut floaty = false;
            for v in present {
                match v {
                    PropValue::Int(i) => int += i,
                    PropValue::Float(f) => {
                        float += f;
                        floaty = true;
                    }
                    _ => {}
                }
            }
            Some(if floaty {
                PropValue::Float(int as f64 + float)
            } else {
                PropValue::Int(int)
            })
        }
        AggFunc::Min => present.into_iter().min_by(val_cmp),
        AggFunc::Max => present.into_iter().max_by(val_cmp),
        AggFunc::Avg => {
            let nums: Vec<f64> = present
                .iter()
                .filter_map(|v| match v {
                    PropValue::Int(i) => Some(*i as f64),
                    PropValue::Float(f) => Some(*f),
                    _ => None,
                })
                .collect();
            (!nums.is_empty())
                .then(|| PropValue::Float(nums.iter().sum::<f64>() / nums.len() as f64))
        }
    }
}

fn cmp_rows(a: &Row, b: &Row, clause: &ReturnClause) -> Ordering {
    for key in &clause.order_by {
        let ord = a[key.item].cmp(&b[key.item]);
        let ord = match key.dir {
            SortDir::Asc => ord,
            SortDir::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.cmp(b)
}

/// Collect-then-aggregate: the reference evaluation the streaming sinks must reproduce.
fn oracle(
    snap: &GraphSnapshot,
    q: &QueryGraph,
    clause: &ReturnClause,
    tuples: &[Vec<u32>],
) -> Vec<Row> {
    let items = &clause.items;
    let mut rows: Vec<Row>;
    if clause.has_aggregates() {
        let key_idx: Vec<usize> = (0..items.len())
            .filter(|&i| items[i].agg.is_none())
            .collect();
        // group key -> the tuples of the group
        let mut groups: Vec<(Row, Vec<&Vec<u32>>)> = Vec::new();
        for t in tuples {
            let key: Row = key_idx
                .iter()
                .map(|&i| extract(snap, q, &items[i].expr, t))
                .collect();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, ts)) => ts.push(t),
                None => groups.push((key, vec![t])),
            }
        }
        if key_idx.is_empty() && groups.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        rows = groups
            .into_iter()
            .map(|(key, ts)| {
                let mut row: Row = vec![None; items.len()];
                for (slot, v) in key_idx.iter().zip(key) {
                    row[*slot] = v;
                }
                for (i, item) in items.iter().enumerate() {
                    if let Some(func) = item.agg {
                        let star = matches!(item.expr, ReturnExpr::Star);
                        let values: Vec<Option<PropValue>> = ts
                            .iter()
                            .map(|t| {
                                if star {
                                    None
                                } else {
                                    extract(snap, q, &item.expr, t)
                                }
                            })
                            .collect();
                        row[i] = batch_agg(func, item.distinct, star, values);
                    }
                }
                row
            })
            .collect();
        if clause.order_by.is_empty() {
            rows.sort_unstable();
        } else {
            rows.sort_unstable_by(|a, b| cmp_rows(a, b, clause));
        }
    } else {
        rows = tuples
            .iter()
            .map(|t| {
                items
                    .iter()
                    .map(|i| extract(snap, q, &i.expr, t))
                    .collect::<Row>()
            })
            .collect();
        if clause.distinct {
            let mut uniq: Vec<Row> = Vec::new();
            for r in rows {
                if !uniq.contains(&r) {
                    uniq.push(r);
                }
            }
            rows = uniq;
        }
        if !clause.order_by.is_empty() {
            rows.sort_unstable_by(|a, b| cmp_rows(a, b, clause));
        }
    }
    if let Some(limit) = clause.limit {
        rows.truncate(limit as usize);
    }
    rows
}

/// Run one query through all three executors and compare against the batch oracle.
fn check_case(db: &GraphflowDB, query: &str, context: &str) -> usize {
    let q = db.parse(query).unwrap();
    let clause = q.return_clause().cloned().unwrap();
    // The raw (WHERE-filtered) match tuples, via the pre-RETURN collection path.
    let all = db
        .run(
            query,
            QueryOptions::new()
                .collect_tuples(true)
                .collect_limit(usize::MAX),
        )
        .unwrap();
    let snap = db.snapshot();
    let expected = oracle(&snap, &q, &clause, &all.tuples);

    let deterministic = clause.has_aggregates() || !clause.order_by.is_empty();
    for (name, options) in [
        ("serial", QueryOptions::new()),
        ("adaptive", QueryOptions::new().adaptive(true)),
        ("parallel", QueryOptions::new().threads(4)),
    ] {
        let rs = db.query_with(query, options).unwrap();
        let got = rs.rows().to_vec();
        if deterministic {
            assert_eq!(
                got, expected,
                "{context}: {name} streaming evaluation of {query} disagrees with the \
                 collect-then-aggregate oracle"
            );
        } else if clause.limit.is_some() {
            // Unordered projection with LIMIT: any `limit` rows drawn from the oracle's
            // (possibly de-duplicated) multiset are correct.
            assert_eq!(
                got.len(),
                expected.len().min(clause.limit.unwrap() as usize),
                "{context}: {name} row count of {query}"
            );
            let mut pool = oracle(
                &snap,
                &q,
                &ReturnClause {
                    limit: None,
                    ..clause.clone()
                },
                &all.tuples,
            );
            for row in &got {
                let pos = pool.iter().position(|r| r == row).unwrap_or_else(|| {
                    panic!(
                        "{context}: {name} produced a row outside the oracle multiset for {query}"
                    )
                });
                pool.swap_remove(pos);
            }
        } else {
            let mut got_sorted = got;
            let mut expected_sorted = expected.clone();
            got_sorted.sort_unstable();
            expected_sorted.sort_unstable();
            assert_eq!(
                got_sorted, expected_sorted,
                "{context}: {name} multiset of {query}"
            );
        }
    }
    expected.len()
}

/// Random structural + property updates leaving the snapshot dirty.
fn random_updates(db: &mut GraphflowDB, rng: &mut StdRng) {
    for _ in 0..rng.gen_range(8usize..16) {
        let n = db.snapshot().base().num_vertices() as u32 + 2;
        match rng.gen_range(0u32..4) {
            0 => {
                let v = db
                    .insert_vertex_with_props(
                        VertexLabel(0),
                        &[("age", PropValue::Int(rng.gen_range(0u32..8) as i64))],
                    )
                    .unwrap();
                db.insert_edge(v, rng.gen_range(0..n), EdgeLabel(0));
            }
            1 => {
                db.insert_edge(rng.gen_range(0..n), rng.gen_range(0..n), EdgeLabel(0));
            }
            2 => {
                let edges = db.graph().edges().to_vec();
                if !edges.is_empty() {
                    let (s, d, l) = edges[rng.gen_range(0..edges.len())];
                    db.delete_edge(s, d, l);
                }
            }
            _ => {
                let v = rng.gen_range(0..db.snapshot().base().num_vertices() as u32);
                let _ = db.set_vertex_prop(v, "age", PropValue::Int(rng.gen_range(0u32..8) as i64));
            }
        }
    }
}

/// The differential harness: randomized (graph, query, RETURN clause) cases across all three
/// executors, on frozen and dirty snapshots.
#[test]
fn streaming_aggregates_match_collect_then_aggregate_oracle() {
    let mut cases = 0usize;
    let mut nonempty = 0usize;
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0xA66 + seed);
        let mut db = random_db(&mut rng);
        let mut queries = Vec::new();
        for _ in 0..4 {
            let t = &TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
            let mut query = t.pattern.to_string();
            if rng.gen_bool(0.4) {
                query.push_str(&format!(" WHERE a.age <= {}", rng.gen_range(2u32..8)));
            }
            query.push(' ');
            query.push_str(&random_return(&mut rng, t));
            queries.push(query);
        }
        for query in &queries {
            if check_case(&db, query, &format!("seed {seed} frozen")) > 0 {
                nonempty += 1;
            }
            cases += 1;
        }
        random_updates(&mut db, &mut rng);
        for query in &queries {
            if check_case(&db, query, &format!("seed {seed} dirty")) > 0 {
                nonempty += 1;
            }
            cases += 1;
        }
    }
    assert!(cases >= 120, "only {cases} differential cases were run");
    assert!(
        nonempty >= cases / 4,
        "too many vacuous cases ({nonempty}/{cases} non-empty)"
    );
}

/// Acceptance criterion: `RETURN COUNT(*)` on a triangle query produces identical counts
/// across all three executors and never materialises per-match tuples — the final extension
/// column is bulk-counted (`bulk_counted_extensions > 0`), and the sink path is the
/// tuple-free counting path.
#[test]
fn count_star_is_exact_and_tuple_free_across_executors() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut b = GraphBuilder::new();
    let n = 150u32;
    for _ in 0..6 * n {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            b.add_edge(s, d);
        }
    }
    let db = GraphflowDB::from_graph(b.build());
    let triangle = "(a)->(b), (b)->(c), (a)->(c)";
    let expected = db.count(triangle).unwrap();
    assert!(expected > 0, "graph must contain triangles");
    for (name, options) in [
        ("serial", QueryOptions::new()),
        ("adaptive", QueryOptions::new().adaptive(true)),
        ("parallel", QueryOptions::new().threads(4)),
    ] {
        let rs = db
            .query_with(&format!("{triangle} RETURN COUNT(*)"), options)
            .unwrap();
        assert_eq!(rs.scalar_count(), Some(expected), "{name}");
        assert!(
            rs.stats.bulk_counted_extensions > 0,
            "{name}: the final extension column must be bulk-counted, not materialised"
        );
    }
    // Queries differing only in their RETURN clause share one plan-cache entry.
    let stats = db.plan_cache_stats();
    assert_eq!(stats.misses, 1, "one optimizer run for all RETURN variants");
}
