//! Durability round trips and crash recovery.
//!
//! The invariants under test:
//!
//! 1. **Round trip** — save → reopen must be invisible to queries: every executor (single
//!    thread, parallel, adaptive) returns on the reopened database exactly what it returns on
//!    an in-memory twin that applied the same updates — for frozen (checkpointed) *and* dirty
//!    (WAL-replayed) states, including properties and delete tombstones.
//! 2. **Prefix consistency** — however the WAL is mutilated (torn tail, corrupt byte,
//!    appended garbage), reopening never panics and always recovers a state the database
//!    actually published: some prefix of the committed epochs.
//! 3. **Scale** (acceptance) — a database with ≥100k base edges and ≥500 committed
//!    post-snapshot batches, with its WAL cut mid-final-record, reopens to the last fully
//!    logged epoch with executor results identical to the pre-crash in-memory state.

use graphflow_core::{Durability, GraphflowDB, QueryOptions};
use graphflow_graph::{generator, EdgeLabel, GraphBuilder, PropValue, Update};
use graphflow_storage::wal::wal_path;
use graphflow_storage::FailpointFile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gf_durability_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The three executor spellings every comparison runs under.
fn executor_options() -> [QueryOptions; 3] {
    [
        QueryOptions::new(),
        QueryOptions::new().threads(2),
        QueryOptions::new().adaptive(true),
    ]
}

/// Assert that `db` and `twin` agree on `patterns` under every executor, and on a
/// property-reading aggregation if `props` is set.
fn assert_dbs_agree(db: &GraphflowDB, twin: &GraphflowDB, patterns: &[&str], props: bool) {
    for pattern in patterns {
        let expected = twin.count(pattern).unwrap();
        for (i, options) in executor_options().into_iter().enumerate() {
            let got = db.run(pattern, options).unwrap().count;
            assert_eq!(got, expected, "executor {i} disagrees on {pattern}");
        }
    }
    if props {
        let q = "(a)-[e]->(b) RETURN COUNT(*), MAX(a.score), MIN(b.score), MAX(e.weight)";
        assert_eq!(
            db.query(q).unwrap().rows(),
            twin.query(q).unwrap().rows(),
            "property aggregation disagrees"
        );
    }
}

/// A small labelled base graph used by the round-trip tests.
fn seed_graph() -> graphflow_graph::Graph {
    let mut b = GraphBuilder::new();
    for (s, d) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)] {
        b.add_labelled_edge(s, d, EdgeLabel(0));
    }
    b.add_labelled_edge(1, 3, EdgeLabel(1));
    b.build()
}

const PATTERNS: &[&str] = &[
    "(a)->(b)",
    "(a)->(b), (b)->(c)",
    "(a)->(b), (b)->(c), (a)->(c)",
];

/// The update script both the persistent database and its in-memory twin apply: edge inserts,
/// deletes (tombstones over base edges), vertex and edge properties.
fn update_script() -> Vec<Vec<Update>> {
    let prop = |v: u32, x: i64| Update::SetVertexProp {
        v,
        key: "score".into(),
        value: PropValue::Int(x),
    };
    vec![
        vec![
            Update::InsertEdge {
                src: 0,
                dst: 3,
                label: EdgeLabel(0),
            },
            prop(0, 10),
            prop(3, -2),
        ],
        vec![
            // Tombstone over a *base* edge: survives only via the delta/WAL.
            Update::DeleteEdge {
                src: 2,
                dst: 3,
                label: EdgeLabel(0),
            },
            Update::InsertEdge {
                src: 3,
                dst: 1,
                label: EdgeLabel(1),
            },
        ],
        vec![
            Update::SetEdgeProp {
                src: 0,
                dst: 1,
                label: EdgeLabel(0),
                key: "weight".into(),
                value: PropValue::Float(2.5),
            },
            prop(4, 7),
            // No-op delete: must not be journalled (replay would otherwise diverge).
            Update::DeleteEdge {
                src: 9,
                dst: 9,
                label: EdgeLabel(0),
            },
        ],
        vec![
            Update::InsertVertex {
                label: graphflow_graph::VertexLabel(0),
            },
            Update::InsertEdge {
                src: 5,
                dst: 6,
                label: EdgeLabel(0),
            },
            prop(6, 99),
        ],
    ]
}

#[test]
fn frozen_snapshot_round_trips_across_reopen() {
    let dir = tmpdir("frozen");
    let twin = GraphflowDB::from_graph(seed_graph());
    let db = GraphflowDB::builder(seed_graph())
        .data_dir(&dir)
        .open()
        .unwrap();
    for batch in update_script() {
        assert_eq!(db.apply_batch(&batch), twin.apply_batch(&batch));
    }
    // Freeze everything into a snapshot; the WAL is truncated, so the reopen below reads
    // *only* the binary snapshot (graph image + property columns + counts).
    db.checkpoint().unwrap();
    let version = db.graph_version();
    drop(db);
    let reopened = GraphflowDB::open(&dir).unwrap();
    assert_eq!(reopened.graph_version(), version, "epoch survives reopen");
    assert!(
        !reopened.snapshot().has_pending_deltas(),
        "frozen state reloads with an empty delta store"
    );
    assert_dbs_agree(&reopened, &twin, PATTERNS, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dirty_state_round_trips_through_wal_replay() {
    let dir = tmpdir("dirty");
    let twin = GraphflowDB::from_graph(seed_graph());
    let db = GraphflowDB::builder(seed_graph())
        .data_dir(&dir)
        .durability(Durability::Fsync)
        .open()
        .unwrap();
    for batch in update_script() {
        assert_eq!(db.apply_batch(&batch), twin.apply_batch(&batch));
    }
    // NO checkpoint: the updates exist only in the WAL on top of the initial snapshot.
    let version = db.graph_version();
    drop(db);
    let reopened = GraphflowDB::open(&dir).unwrap();
    assert_eq!(
        reopened.graph_version(),
        version,
        "replay reaches the last epoch"
    );
    assert_dbs_agree(&reopened, &twin, PATTERNS, true);

    // Epochs keep advancing monotonically after recovery, and a second reopen (now mixing a
    // mid-history checkpoint + fresh WAL records) still agrees with the twin.
    reopened.checkpoint().unwrap();
    let more = vec![
        Update::InsertEdge {
            src: 4,
            dst: 2,
            label: EdgeLabel(0),
        },
        Update::SetVertexProp {
            v: 1,
            key: "score".into(),
            value: PropValue::Int(41),
        },
    ];
    assert_eq!(reopened.apply_batch(&more), twin.apply_batch(&more));
    assert!(reopened.graph_version() > version);
    let version2 = reopened.graph_version();
    drop(reopened);
    let again = GraphflowDB::open(&dir).unwrap();
    assert_eq!(again.graph_version(), version2);
    assert_dbs_agree(&again, &twin, PATTERNS, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn existing_data_wins_over_builder_graph() {
    let dir = tmpdir("existing_wins");
    let db = GraphflowDB::builder(seed_graph())
        .data_dir(&dir)
        .open()
        .unwrap();
    let edges = db.count("(a)->(b)").unwrap();
    drop(db);
    // Reopen with a *different* (bigger) seed graph: the directory's data must win.
    let mut b = GraphBuilder::new();
    for v in 0..50 {
        b.add_edge(v, (v + 1) % 50);
    }
    let reopened = GraphflowDB::builder(b.build())
        .data_dir(&dir)
        .open()
        .unwrap();
    assert_eq!(reopened.count("(a)->(b)").unwrap(), edges);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clean_shutdown_under_none_durability_survives_reopen() {
    let dir = tmpdir("none_clean");
    let twin = GraphflowDB::from_graph(seed_graph());
    let db = GraphflowDB::builder(seed_graph())
        .data_dir(&dir)
        .durability(Durability::None)
        .open()
        .unwrap();
    for batch in update_script() {
        assert_eq!(db.apply_batch(&batch), twin.apply_batch(&batch));
    }
    db.sync().unwrap(); // the explicit barrier Durability::None requires
    drop(db);
    let reopened = GraphflowDB::open(&dir).unwrap();
    assert_dbs_agree(&reopened, &twin, PATTERNS, true);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Property test: whatever we do to the WAL, reopening recovers a prefix-consistent epoch —
/// one the database actually published, with exactly that epoch's edge set — and never panics.
#[test]
fn wal_mutilation_always_recovers_a_committed_prefix() {
    let dir = tmpdir("fault_prop");
    let n = 64u32;
    let mut b = GraphBuilder::with_vertices(n as usize);
    b.add_edges(generator::powerlaw_cluster(n as usize, 2, 0.3, 7));
    let db = GraphflowDB::builder(b.build())
        .data_dir(&dir)
        .durability(Durability::Fsync)
        .open()
        .unwrap();

    type EdgeSet = BTreeSet<(u32, u32, u16)>;
    let mut edges: EdgeSet = db
        .graph()
        .edges()
        .iter()
        .map(|&(s, d, l)| (s, d, l.0))
        .collect();
    // (epoch, edge set) after every committed batch; index 0 is the initial snapshot.
    let mut history: Vec<(u64, EdgeSet)> = vec![(db.graph_version(), edges.clone())];

    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for _ in 0..40 {
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1..5usize) {
            let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
            let l = rng.gen_range(0..2u16);
            if rng.gen_bool(0.7) {
                batch.push(Update::InsertEdge {
                    src: s,
                    dst: d,
                    label: EdgeLabel(l),
                });
                edges.insert((s, d, l));
            } else {
                batch.push(Update::DeleteEdge {
                    src: s,
                    dst: d,
                    label: EdgeLabel(l),
                });
                edges.remove(&(s, d, l));
            }
        }
        db.apply_batch(&batch);
        history.push((db.graph_version(), edges.clone()));
    }
    drop(db);

    let wal = wal_path(&dir);
    let pristine = std::fs::read(&wal).unwrap();
    assert!(!pristine.is_empty(), "the WAL must hold the batches");
    let fp = FailpointFile::new(&wal);
    for trial in 0..60u64 {
        std::fs::write(&wal, &pristine).unwrap();
        match trial % 3 {
            0 => fp
                .truncate_at(rng.gen_range(0..pristine.len() as u64 + 1))
                .unwrap(),
            1 => fp
                .corrupt_at(
                    rng.gen_range(0..pristine.len() as u64),
                    rng.gen_range(1..256u32) as u8,
                )
                .unwrap(),
            _ => {
                let junk: Vec<u8> = (0..rng.gen_range(1..40usize))
                    .map(|_| rng.gen_range(0..256u32) as u8)
                    .collect();
                fp.append_garbage(&junk).unwrap();
            }
        }
        let reopened = GraphflowDB::open(&dir).unwrap_or_else(|e| {
            panic!("trial {trial}: reopen after mutilation must not fail: {e}")
        });
        let epoch = reopened.graph_version();
        let (_, expected) = history
            .iter()
            .find(|(e, _)| *e == epoch)
            .unwrap_or_else(|| panic!("trial {trial}: epoch {epoch} was never published"));
        // The oracle: a fresh in-memory database over exactly the edge set that was published
        // at the recovered epoch must agree on every pattern.
        let mut b = GraphBuilder::with_vertices(n as usize);
        for &(s, d, l) in expected {
            b.add_labelled_edge(s, d, EdgeLabel(l));
        }
        let reference = GraphflowDB::from_graph(b.build());
        for pattern in ["(a)->(b)", "(a)->(b), (b)->(c), (a)->(c)"] {
            assert_eq!(
                reopened.count(pattern).unwrap(),
                reference.count(pattern).unwrap(),
                "trial {trial}: recovered state at epoch {epoch} disagrees on {pattern}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance: ≥100k base edges, ≥500 committed post-snapshot batches, WAL cut mid-record →
/// reopen lands exactly on the last fully-logged epoch and every executor agrees with the
/// pre-crash in-memory twin.
#[test]
fn acceptance_kill_mid_append_reopens_to_last_logged_epoch() {
    let dir = tmpdir("acceptance");
    let mut b = GraphBuilder::new();
    b.add_edges(generator::powerlaw_cluster(36_000, 3, 0.2, 17));
    let base = b.build();
    assert!(base.num_edges() >= 100_000, "need ≥100k edges");
    let n = base.num_vertices() as u32;

    let twin = GraphflowDB::builder(base.clone())
        .staleness_threshold(u64::MAX)
        .build();
    let db = GraphflowDB::builder(base)
        .data_dir(&dir)
        .durability(Durability::Fsync)
        .staleness_threshold(u64::MAX)
        .open()
        .unwrap();
    db.checkpoint().unwrap();

    let mut rng = StdRng::seed_from_u64(0xACCE);
    let mut wal_len_at_499 = 0u64;
    let mut epoch_at_499 = 0u64;
    for i in 0..500 {
        let mut batch = Vec::new();
        for _ in 0..3 {
            let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if rng.gen_bool(0.85) {
                batch.push(Update::InsertEdge {
                    src: s,
                    dst: d,
                    label: EdgeLabel(0),
                });
            } else {
                batch.push(Update::DeleteEdge {
                    src: s,
                    dst: d,
                    label: EdgeLabel(0),
                });
            }
        }
        db.apply_batch(&batch);
        if i < 499 {
            // The final batch is the one the "crash" tears mid-append: the twin never sees it.
            twin.apply_batch(&batch);
        }
        if i == 498 {
            wal_len_at_499 = std::fs::metadata(wal_path(&dir)).unwrap().len();
            epoch_at_499 = db.graph_version();
        }
    }
    assert!(db.graph_version() > epoch_at_499, "batch 500 was effective");
    drop(db);

    // Tear the WAL a few bytes into the final record — a crash mid-append.
    FailpointFile::new(wal_path(&dir))
        .truncate_at(wal_len_at_499 + 5)
        .unwrap();
    let reopened = GraphflowDB::open(&dir).unwrap();
    assert_eq!(
        reopened.graph_version(),
        epoch_at_499,
        "recovery lands on the last fully-logged epoch"
    );
    let patterns: &[&str] = if cfg!(debug_assertions) {
        &["(a)->(b)"]
    } else {
        &["(a)->(b)", "(a)->(b), (b)->(c), (a)->(c)"]
    };
    assert_dbs_agree(&reopened, &twin, patterns, false);
    std::fs::remove_dir_all(&dir).unwrap();
}
