//! Integration tests for the prepared-query facade: plan-cache amortization and eviction,
//! streaming result sinks over large result sets, builder options, and parser error surfaces.

use graphflow_core::{CallbackSink, CountingSink, Error, GraphflowDB, LimitSink, QueryOptions};
use graphflow_graph::GraphBuilder;
use graphflow_query::patterns;

const TRIANGLE: &str = "(a)->(b), (b)->(c), (a)->(c)";

fn small_db() -> GraphflowDB {
    let edges = graphflow_graph::generator::powerlaw_cluster(300, 4, 0.5, 99);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    GraphflowDB::from_graph(b.build())
}

/// A complete directed graph on `n` vertices (every ordered pair is an edge): the triangle
/// pattern has `n * (n-1) * (n-2)` matches, which exceeds 100k for `n = 60`.
fn complete_db(n: u32) -> GraphflowDB {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(i, j);
            }
        }
    }
    GraphflowDB::from_graph(b.build())
}

// --- plan-cache amortization ------------------------------------------------------------

/// The acceptance-criteria test: running the same pattern twice via `prepare` performs exactly
/// one optimizer invocation, asserted through the plan-cache hit/miss counters.
#[test]
fn preparing_the_same_pattern_twice_runs_the_optimizer_once() {
    let db = small_db();
    assert_eq!(db.plan_cache_stats().misses, 0);

    let first = db.prepare(TRIANGLE).unwrap();
    assert!(!first.was_cached());
    assert_eq!(db.plan_cache_stats().misses, 1, "first prepare optimizes");
    assert_eq!(db.plan_cache_stats().hits, 0);

    let second = db.prepare(TRIANGLE).unwrap();
    assert!(second.was_cached());
    assert_eq!(
        db.plan_cache_stats().misses,
        1,
        "second prepare must NOT invoke the optimizer again"
    );
    assert_eq!(db.plan_cache_stats().hits, 1);

    // Both statements answer identically, and per-run stats surface the cache outcome.
    assert_eq!(first.count().unwrap(), second.count().unwrap());
    let run = second.run(QueryOptions::default()).unwrap();
    assert_eq!(run.stats.plan_cache_hits, 1);
    assert_eq!(run.stats.plan_cache_misses, 0);
}

/// An isomorphic rewriting — different vertex names, shuffled clause order — is the same
/// canonical shape, so it is also served from the cache.
#[test]
fn isomorphic_pattern_skips_the_optimizer() {
    let db = small_db();
    let original = db.prepare(TRIANGLE).unwrap();
    let rewritten = db.prepare("(u)->(w), (v)->(w), (u)->(v)").unwrap();
    assert!(rewritten.was_cached());
    assert_eq!(db.plan_cache_stats().misses, 1);
    assert_eq!(original.count().unwrap(), rewritten.count().unwrap());
}

/// `run`/`count` are served through the same cache as `prepare`.
#[test]
fn ad_hoc_runs_share_the_plan_cache() {
    let db = small_db();
    let a = db.count(TRIANGLE).unwrap();
    let b = db.count(TRIANGLE).unwrap();
    assert_eq!(a, b);
    let stats = db.plan_cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 1);
}

#[test]
fn lru_eviction_reoptimizes_evicted_shapes() {
    let edges = graphflow_graph::generator::powerlaw_cluster(200, 3, 0.4, 7);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    let db = GraphflowDB::builder(b.build())
        .plan_cache_capacity(2)
        .build();

    let path2 = "(a)->(b), (b)->(c)";
    let path3 = "(a)->(b), (b)->(c), (c)->(d)";
    db.prepare(TRIANGLE).unwrap();
    db.prepare(path2).unwrap();
    // Third distinct shape evicts the least recently used (the triangle).
    db.prepare(path3).unwrap();
    assert_eq!(db.plan_cache_stats().evictions, 1);
    assert_eq!(db.plan_cache_stats().entries, 2);
    // The triangle must be re-optimized...
    let again = db.prepare(TRIANGLE).unwrap();
    assert!(!again.was_cached());
    // ... while the most recent shape is still cached.
    assert!(db.prepare(path3).unwrap().was_cached());
}

/// Queries too large for brute-force canonicalisation (10+ vertices) must still run — they
/// bypass the plan cache instead of panicking inside it.
#[test]
fn oversized_queries_bypass_the_cache_instead_of_panicking() {
    let db = small_db();
    // A 10-vertex directed path: one vertex beyond the canonicalisation limit.
    let pattern = "(a)->(b), (b)->(c), (c)->(d), (d)->(e), (e)->(f), (f)->(g), (g)->(h), \
                   (h)->(i), (i)->(j)";
    let prepared = db.prepare(pattern).unwrap();
    assert!(!prepared.was_cached());
    let count = prepared.count().unwrap();
    assert_eq!(db.count(pattern).unwrap(), count);
    // The cache was never consulted for this shape.
    assert_eq!(db.plan_cache_stats().misses, 0);
    assert_eq!(db.plan_cache_stats().entries, 0);
}

// --- streaming sinks --------------------------------------------------------------------

/// The acceptance-criteria test: a streaming-sink run over a pattern with more than 100k
/// matches completes without materialising tuples, and its count matches `count()`.
#[test]
fn streaming_sink_handles_over_100k_matches_without_materializing() {
    let db = complete_db(60);
    let expected = 60u64 * 59 * 58;
    let prepared = db.prepare(TRIANGLE).unwrap();
    assert_eq!(prepared.count().unwrap(), expected);
    assert!(expected > 100_000);

    // Stream through a callback that keeps only a running aggregate — no tuple is stored.
    let mut streamed = 0u64;
    let mut checksum = 0u64;
    let stats = {
        let mut sink = CallbackSink::new(|t: &[u32]| {
            streamed += 1;
            checksum ^= (t[0] as u64) << 32 | (t[1] as u64) << 16 | t[2] as u64;
            true
        });
        prepared
            .run_with_sink(QueryOptions::new(), &mut sink)
            .unwrap()
    };
    assert_eq!(streamed, expected, "streamed count must match count()");
    assert_eq!(stats.output_count, expected);

    // The counting fast path agrees too.
    let mut counter = CountingSink::new();
    prepared
        .run_with_sink(QueryOptions::new(), &mut counter)
        .unwrap();
    assert_eq!(counter.matches, expected);
}

/// A limit sink aborts execution as soon as N matches are found (LIMIT-N semantics): far less
/// work than the full run.
#[test]
fn limit_sink_stops_early_on_huge_result_sets() {
    let db = complete_db(60);
    let prepared = db.prepare(TRIANGLE).unwrap();
    let mut sink = LimitSink::new(25);
    let stats = prepared
        .run_with_sink(QueryOptions::new(), &mut sink)
        .unwrap();
    assert_eq!(sink.tuples.len(), 25);
    assert!(
        stats.output_count < 1000,
        "limit-25 must not enumerate the whole 200k-match result set (saw {})",
        stats.output_count
    );
    // Each collected tuple is a genuine triangle.
    for t in &sink.tuples {
        assert!(db
            .graph()
            .has_edge(t[0], t[1], graphflow_graph::EdgeLabel(0)));
        assert!(db
            .graph()
            .has_edge(t[1], t[2], graphflow_graph::EdgeLabel(0)));
        assert!(db
            .graph()
            .has_edge(t[0], t[2], graphflow_graph::EdgeLabel(0)));
    }
}

/// Streaming agrees with counting across all three executors.
#[test]
fn sinks_agree_across_execution_modes() {
    let db = small_db();
    let q = patterns::diamond_x();
    let prepared = db.prepare_query(q).unwrap();
    let expected = prepared.count().unwrap();
    for options in [
        QueryOptions::new(),
        QueryOptions::new().adaptive(true),
        QueryOptions::new().threads(4),
    ] {
        let mut streamed = 0u64;
        {
            let mut sink = CallbackSink::new(|_t: &[u32]| {
                streamed += 1;
                true
            });
            prepared.run_with_sink(options.clone(), &mut sink).unwrap();
        }
        assert_eq!(streamed, expected, "{options:?}");
    }
}

// --- options and error surface ----------------------------------------------------------

#[test]
fn adaptive_with_threads_is_a_reported_error() {
    let db = small_db();
    let err = db
        .run(TRIANGLE, QueryOptions::new().adaptive(true).threads(2))
        .unwrap_err();
    assert!(matches!(err, Error::InvalidOptions(_)));
    assert!(err.to_string().contains("adaptive"));
}

#[test]
fn parser_error_cases_are_reported_with_positions() {
    use std::error::Error as _;
    let db = small_db();

    // Truncated pattern.
    let err = db.prepare("(a)->").unwrap_err();
    assert!(matches!(err, Error::Parse(_)));
    assert!(err.source().is_some());

    // Dangling vertex with no arrow.
    assert!(matches!(db.prepare("(a)->(b), (c)"), Err(Error::Parse(_))));

    // Disconnected pattern.
    assert!(matches!(
        db.prepare("(a)->(b), (c)->(d)"),
        Err(Error::Parse(_))
    ));

    // Duplicate edge: the detail lives on the chained source, not the top-level Display.
    let err = db.prepare("(a)->(b), (a)->(b)").unwrap_err();
    let source = err.source().expect("parse errors chain their source");
    assert!(source.to_string().contains("duplicate edge"), "{source}");

    // Self loop.
    assert!(matches!(db.prepare("(a)->(a)"), Err(Error::Parse(_))));

    // Parse failures must not pollute the plan cache or its counters.
    assert_eq!(db.plan_cache_stats().misses, 0);
    assert_eq!(db.plan_cache_stats().entries, 0);
}

#[test]
fn collected_results_still_work_through_query_result() {
    let db = small_db();
    let result = db
        .run(
            TRIANGLE,
            QueryOptions::new().collect_tuples(true).collect_limit(5),
        )
        .unwrap();
    assert!(result.tuples.len() <= 5);
    assert!(result.count >= result.tuples.len() as u64);
    for t in &result.tuples {
        assert!(db
            .graph()
            .has_edge(t[0], t[1], graphflow_graph::EdgeLabel(0)));
        assert!(db
            .graph()
            .has_edge(t[1], t[2], graphflow_graph::EdgeLabel(0)));
        assert!(db
            .graph()
            .has_edge(t[0], t[2], graphflow_graph::EdgeLabel(0)));
    }
}
