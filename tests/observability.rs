//! Observability integration tests: per-operator profiler exactness across all three executors
//! and snapshot states, profiling-off purity, the db-wide metrics registry under concurrent
//! readers and writers, Prometheus text rendering, and the slow-query log.

use graphflow_core::{GraphflowDB, QueryOptions, RuntimeStats, SLOW_LOG_CAPACITY};
use graphflow_graph::{EdgeLabel, GraphBuilder};
use graphflow_plan::plan::{Plan, PlanNode};
use graphflow_plan::wco::wco_node_for_ordering;
use graphflow_query::patterns;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const TRIANGLE: &str = "(a)->(b), (b)->(c), (a)->(c)";
const DIAMOND_X: &str = "(a)->(b), (a)->(c), (b)->(c), (b)->(d), (c)->(d)";

fn small_db() -> GraphflowDB {
    let edges = graphflow_graph::generator::powerlaw_cluster(400, 4, 0.5, 42);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    GraphflowDB::from_graph(b.build())
}

/// The exactness contract: every per-operator counter sums back to the run's totals.
fn assert_profile_exact(label: &str, stats: &RuntimeStats) {
    let prof = stats
        .profile
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: profiled run must attach an operator tree"));
    assert_eq!(prof.total_icost(), stats.icost, "{label}: i-cost");
    assert_eq!(
        prof.total_intermediate_tuples(),
        stats.intermediate_tuples,
        "{label}: intermediate tuples"
    );
    assert_eq!(prof.total_outputs(), stats.output_count, "{label}: outputs");
    assert_eq!(
        prof.total_cache_hits(),
        stats.cache_hits,
        "{label}: cache hits"
    );
    assert_eq!(
        prof.total_cache_misses(),
        stats.cache_misses,
        "{label}: cache misses"
    );
    assert_eq!(
        prof.total_delta_merges(),
        stats.delta_merges,
        "{label}: delta merges"
    );
    assert_eq!(
        prof.total_kernel_merge(),
        stats.kernel_merge,
        "{label}: merge-kernel calls"
    );
    assert_eq!(
        prof.total_kernel_gallop(),
        stats.kernel_gallop,
        "{label}: gallop-kernel calls"
    );
    assert_eq!(
        prof.total_kernel_block(),
        stats.kernel_block,
        "{label}: block-kernel calls"
    );
}

fn executor_options() -> [(&'static str, QueryOptions); 3] {
    [
        ("serial", QueryOptions::new()),
        ("adaptive", QueryOptions::new().adaptive(true)),
        ("parallel", QueryOptions::new().threads(4)),
    ]
}

// --- profiler exactness -----------------------------------------------------------------

/// The acceptance-criteria test: on every executor, the per-operator tree of a profiled run
/// sums *exactly* to the run's `RuntimeStats` totals — on the frozen snapshot and again on a
/// dirty snapshot with uncompacted delta edges.
#[test]
fn profiler_totals_are_exact_on_all_executors_and_snapshots() {
    let db = small_db();
    for (name, options) in executor_options() {
        let r = db.run(DIAMOND_X, options.profile(true)).unwrap();
        assert!(r.count > 0, "{name}: diamond-X must match something");
        assert_profile_exact(&format!("{name}/frozen"), &r.stats);
    }

    // Dirty snapshot: stage edges in a committed-but-uncompacted delta so the executors go
    // through the overlay-merge path, then re-check exactness.
    let mut txn = db.begin_write();
    for i in 0..24u32 {
        txn.insert_edge(i, (i * 7 + 3) % 400, EdgeLabel(0));
    }
    txn.commit();
    for (name, options) in executor_options() {
        let r = db.run(DIAMOND_X, options.profile(true)).unwrap();
        assert_profile_exact(&format!("{name}/dirty"), &r.stats);
    }
}

/// Exactness also holds for hybrid plans: the HASH-JOIN node carries the build subtree, and
/// build-side work still sums into the totals.
#[test]
fn profiler_is_exact_on_hybrid_hash_join_plans() {
    let db = small_db();
    let q = patterns::diamond_x();
    // The Figure 1c plan: two triangles joined on (a2, a3).
    let left = wco_node_for_ordering(&q, &[1, 2, 0]).unwrap();
    let right = wco_node_for_ordering(&q, &[1, 2, 3]).unwrap();
    let join = PlanNode::hash_join(&q, left, right).expect("Figure 1c join is valid");
    let plan = Plan::new(q, join, 0.0);
    for (name, options) in [
        ("serial", QueryOptions::new()),
        ("parallel", QueryOptions::new().threads(4)),
    ] {
        let r = db.run_plan(&plan, options.profile(true)).unwrap();
        assert_profile_exact(&format!("{name}/hybrid"), &r.stats);
        let prof = r.stats.profile.as_ref().unwrap();
        assert_eq!(
            prof.children.len(),
            2,
            "{name}: a HASH-JOIN profile node carries probe and build subtrees"
        );
    }
}

/// With `profile: false` (the default) the run leaves no trace: no operator tree, and every
/// deterministic counter identical to a profiled run of the same plan.
#[test]
fn profiling_off_leaves_stats_identical() {
    let db = small_db();
    let prepared = db.prepare(DIAMOND_X).unwrap();
    for (name, options) in executor_options() {
        let off = prepared.run(options.clone()).unwrap().stats;
        let on = prepared.run(options.profile(true)).unwrap().stats;
        assert!(off.profile.is_none(), "{name}: profiling is opt-in");
        // Strip the fields that legitimately differ (wall time, the tree itself): everything
        // else must be byte-identical.
        let mut on_cmp = on.clone();
        on_cmp.profile = None;
        on_cmp.elapsed = Duration::ZERO;
        let mut off_cmp = off.clone();
        off_cmp.elapsed = Duration::ZERO;
        assert_eq!(
            on_cmp, off_cmp,
            "{name}: profiling must not change the counters"
        );
    }
}

/// `PROFILE` surfaces the intersection-kernel mix: a multiway-intersection query reports a
/// non-zero kernel split in its stats on every executor, and the rendered report names the
/// per-operator kernel dispatch counts.
#[test]
fn profile_reports_the_intersection_kernel_mix() {
    let db = small_db();
    for (name, options) in executor_options() {
        let report = db.prepare(DIAMOND_X).unwrap().profile(options).unwrap();
        let stats = report.stats.as_ref().unwrap();
        assert!(
            stats.kernel_merge + stats.kernel_gallop + stats.kernel_block > 0,
            "{name}: a multiway query dispatches at least one two-way kernel"
        );
        let rendered = report.to_string();
        assert!(
            rendered.contains("kernels merge/gallop/block"),
            "{name}: rendered PROFILE names the kernel mix:\n{rendered}"
        );
        let json = report.to_json();
        assert!(
            json.contains("\"kernel_merge\":"),
            "{name}: PROFILE JSON carries kernel counters"
        );
    }
}

// --- metrics registry -------------------------------------------------------------------

/// Hammer `metrics()` from reader threads while writers commit and queries run: every sampled
/// counter must be monotonically non-decreasing, and the final totals must account for all
/// the work submitted.
#[test]
fn metrics_counters_are_monotonic_under_concurrency() {
    const WRITERS: usize = 2;
    const COMMITS_PER_WRITER: u32 = 50;
    const QUERIERS: usize = 2;
    const QUERIES_PER_QUERIER: usize = 20;

    let db = small_db();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..COMMITS_PER_WRITER {
                    let mut txn = db.begin_write();
                    txn.insert_edge((w as u32) * 1000 + i, i, EdgeLabel(0));
                    txn.commit();
                }
            });
        }
        for _ in 0..QUERIERS {
            let db = db.clone();
            s.spawn(move || {
                for _ in 0..QUERIES_PER_QUERIER {
                    db.count(TRIANGLE).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let db = db.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut prev = db.metrics();
                while !stop.load(Ordering::Relaxed) {
                    let m = db.metrics();
                    assert!(m.queries_started >= prev.queries_started);
                    assert!(m.queries_completed >= prev.queries_completed);
                    assert!(m.txn_commits >= prev.txn_commits);
                    assert!(m.query_latency.count() >= prev.query_latency.count());
                    assert!(m.queries_started >= m.queries_completed);
                    prev = m;
                    std::thread::yield_now();
                }
            });
        }
        // The scope joins the writer/querier threads when the closure returns; flip the stop
        // flag once their work is provably done by polling the counters.
        let db = db.clone();
        let stop = &stop;
        s.spawn(move || {
            let expected_queries = (QUERIERS * QUERIES_PER_QUERIER) as u64;
            let expected_commits = WRITERS as u64 * COMMITS_PER_WRITER as u64;
            loop {
                let m = db.metrics();
                if m.queries_completed >= expected_queries && m.txn_commits >= expected_commits {
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
                std::thread::yield_now();
            }
        });
    });

    let m = db.metrics();
    assert_eq!(
        m.queries_completed,
        (QUERIERS * QUERIES_PER_QUERIER) as u64,
        "every query completed"
    );
    assert_eq!(m.queries_started, m.queries_completed);
    assert_eq!(m.txn_commits, WRITERS as u64 * COMMITS_PER_WRITER as u64);
    assert_eq!(m.query_latency.count(), m.queries_completed);
}

/// `metrics().render()` must be valid Prometheus text exposition: every sample line parses,
/// histogram buckets are cumulative and end at `+Inf == _count`.
#[test]
fn rendered_metrics_are_valid_prometheus_text() {
    let db = small_db();
    db.count(TRIANGLE).unwrap();
    db.count(TRIANGLE).unwrap();
    let text = db.metrics().render();

    let valid_name = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit())
    };
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line must be '<series> <value>', got {line:?}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
        let name = series.split('{').next().unwrap();
        assert!(valid_name(name), "invalid metric name in {line:?}");
        if let Some(labels) = series.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed label set in {line:?}"
                );
            }
        }
        samples += 1;
    }
    assert!(
        samples >= 15,
        "expected a full registry, got {samples} samples"
    );

    // Histogram shape: buckets are cumulative, the +Inf bucket equals _count, and both
    // queries landed in it.
    let bucket_values: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("graphflow_query_latency_seconds_bucket"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(!bucket_values.is_empty());
    assert!(bucket_values.windows(2).all(|w| w[0] <= w[1]), "cumulative");
    let count: u64 = text
        .lines()
        .find(|l| l.starts_with("graphflow_query_latency_seconds_count"))
        .and_then(|l| l.rsplit_once(' '))
        .unwrap()
        .1
        .parse()
        .unwrap();
    assert_eq!(*bucket_values.last().unwrap(), count);
    assert_eq!(count, 2);
    assert!(text.contains("graphflow_query_latency_seconds_bucket{le=\"+Inf\"}"));
}

// --- slow-query log ---------------------------------------------------------------------

#[test]
fn slow_query_log_captures_queries_over_threshold_and_is_bounded() {
    let edges = graphflow_graph::generator::powerlaw_cluster(200, 3, 0.4, 7);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    let db = GraphflowDB::builder(b.build())
        .slow_query_threshold(Duration::ZERO)
        .build();

    db.count(TRIANGLE).unwrap();
    let entries = db.slow_queries();
    assert_eq!(entries.len(), 1, "threshold 0 records every query");
    assert!(!entries[0].query.is_empty());
    assert!(!entries[0].plan_id.is_empty());
    assert!(entries[0].latency > Duration::ZERO);

    // The ring is bounded: overflow drops the oldest entries, never grows past capacity.
    for _ in 0..(SLOW_LOG_CAPACITY + 16) {
        db.count(TRIANGLE).unwrap();
    }
    assert_eq!(db.slow_queries().len(), SLOW_LOG_CAPACITY);
}

#[test]
fn slow_query_log_is_opt_in_and_respects_the_threshold() {
    // No threshold configured: nothing is recorded.
    let db = small_db();
    db.count(TRIANGLE).unwrap();
    assert!(db.slow_queries().is_empty());

    // A threshold far above any realistic run: still nothing.
    let edges = graphflow_graph::generator::powerlaw_cluster(200, 3, 0.4, 7);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    let db = GraphflowDB::builder(b.build())
        .slow_query_threshold(Duration::from_secs(3600))
        .build();
    db.count(TRIANGLE).unwrap();
    assert!(db.slow_queries().is_empty());
}
