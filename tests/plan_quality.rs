//! Plan-quality regression harness (Section 8.2): for every benchmark query that
//! `fig7_plan_spectra` measures, enumerate the plan spectrum on a seeded dataset, execute the
//! DP-chosen plan, and assert its measured runtime sits in the cheapest decile of the spectrum.
//!
//! The paper's own quality criterion — the optimizer pick is within 1.4x of the optimal plan in
//! the large majority of spectra — is kept as a noise escape hatch: micro-benchmarks at test
//! scale can reorder near-tied plans, but a pick within 1.4x of the measured best is a good
//! plan by the paper's definition even if ties push its percentile above 0.10.
//!
//! Debug builds run the same harness as a smoke test with loose thresholds (unoptimized timing
//! is not representative); CI additionally runs this file under `--release`, where the decile
//! assertion is enforced at a larger dataset scale.

use graphflow_catalog::Catalogue;
use graphflow_datasets::Dataset;
use graphflow_exec::execute;
use graphflow_graph::Graph;
use graphflow_plan::spectrum::{enumerate_spectrum, SpectrumLimits};
use graphflow_plan::{percentile_rank, DpOptimizer, Plan};
use graphflow_query::patterns;
use std::time::Instant;

/// The query set measured by the fig7_plan_spectra benchmark binary.
const FIG7_QUERIES: [usize; 8] = [1, 2, 3, 4, 5, 6, 8, 11];

/// Best-of-`samples` wall time for one plan, in seconds.
fn measure(graph: &Graph, plan: &Plan, samples: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let result = execute(graph, plan);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(result.count);
    }
    best
}

#[test]
fn dp_choice_lands_in_the_cheapest_decile_of_every_fig7_spectrum() {
    // Release runs enforce the decile criterion at a meaningful scale; debug runs only smoke
    // the harness (unoptimized wall times are too noisy to rank plans by).
    let (scale, samples, rank_limit, slack) = if cfg!(debug_assertions) {
        (0.05, 2, 0.50, 4.0)
    } else {
        (0.15, 3, 0.10, 1.4)
    };
    let graph = Dataset::Amazon.generate(scale);
    let cat = Catalogue::with_defaults(graph.clone());
    let optimizer = DpOptimizer::new(&cat);
    let model = *optimizer.cost_model();
    let mut failures = Vec::new();

    for j in FIG7_QUERIES {
        let q = patterns::benchmark_query(j);
        let spectrum = enumerate_spectrum(
            &q,
            &cat,
            &model,
            SpectrumLimits {
                max_plans_per_subset: 16,
                max_plans_per_class: 12,
            },
        );
        assert!(!spectrum.is_empty(), "Q{j} spectrum is empty");
        let chosen = optimizer.optimize(&q).expect("DP plans every fig7 query");
        let chosen_fp = chosen.root.fingerprint();

        // Warm the graph's adjacency pages before any timed run.
        measure(&graph, &spectrum[0].plan, 1);

        let mut times = Vec::with_capacity(spectrum.len());
        let mut chosen_time = None;
        for sp in &spectrum {
            let t = measure(&graph, &sp.plan, samples);
            if sp.plan.root.fingerprint() == chosen_fp {
                chosen_time = Some(t);
            }
            times.push(t);
        }
        // The capped spectrum may not contain the exact chosen operator order; measure directly.
        let chosen_time = chosen_time.unwrap_or_else(|| measure(&graph, &chosen, samples));

        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let rank = percentile_rank(&times, chosen_time);
        if rank > rank_limit && chosen_time > slack * best {
            failures.push(format!(
                "Q{j}: chosen plan ranks at percentile {rank:.2} ({chosen_time:.4}s vs best \
                 {best:.4}s over {} plans)",
                times.len()
            ));
        }
    }

    assert!(
        failures.is_empty(),
        "DP picks fell outside the cheapest decile (and outside {slack}x of optimal):\n{}",
        failures.join("\n")
    );
}

#[test]
fn dp_choice_is_the_cost_floor_of_every_fig7_spectrum() {
    // Deterministic companion to the timing test: the chosen plan's *estimated* cost is never
    // above any spectrum plan's, so a decile miss above can only be measurement noise or a
    // cost-model (not a search) deficiency.
    let graph = Dataset::Amazon.generate(0.05);
    let cat = Catalogue::with_defaults(graph);
    let optimizer = DpOptimizer::new(&cat);
    let model = *optimizer.cost_model();
    for j in FIG7_QUERIES {
        let q = patterns::benchmark_query(j);
        let chosen = optimizer.optimize(&q).expect("DP plans every fig7 query");
        for sp in enumerate_spectrum(&q, &cat, &model, SpectrumLimits::default()) {
            assert!(
                chosen.estimated_cost <= sp.plan.estimated_cost * (1.0 + 1e-9),
                "Q{j}: chosen cost {} exceeds spectrum plan cost {} ({})",
                chosen.estimated_cost,
                sp.plan.estimated_cost,
                sp.plan.root.fingerprint()
            );
        }
    }
}
