//! Concurrency stress tests: one shared `GraphflowDB` handle, writer threads committing
//! transactions while reader threads execute owned prepared queries.
//!
//! The invariants under test:
//!
//! * **Atomic epoch publication** — every [`WriteTxn`] here preserves a global invariant
//!   (each writer keeps exactly one "live" edge by deleting the old one and inserting the new
//!   one in the same transaction), so *any* snapshot a reader pins must satisfy it; observing
//!   a half-applied transaction fails the test.
//! * **Snapshot consistency** — a parallel run on a pinned snapshot must equal a serial
//!   re-run on the *same* snapshot, no matter what writers committed in between; re-running
//!   after all writers joined must reproduce the same count again (repeatable reads).
//! * **No lost updates** — after all writers join, every writer's final edge is present and
//!   the global edge count adds up.

use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{EdgeLabel, GraphBuilder, GraphView as _, VertexId};

const EDGE: EdgeLabel = EdgeLabel(0);

/// A random base graph plus, per writer, one reserved vertex range carrying its single live
/// edge.
fn stress_db(num_writers: usize) -> (GraphflowDB, usize) {
    let edges = graphflow_graph::generator::powerlaw_cluster(200, 3, 0.5, 77);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    // Reserve an isolated vertex block per writer, far beyond the base graph.
    for w in 0..num_writers {
        let base = writer_base(w);
        b.add_edge(base, base + 1);
    }
    let g = b.build();
    let num_edges = g.num_edges();
    (GraphflowDB::from_graph(g), num_edges)
}

fn writer_base(w: usize) -> VertexId {
    1000 + (w as VertexId) * 100
}

/// N writer transactions churning concurrently with M reader threads; every pinned snapshot
/// must satisfy the writers' transactional invariant and agree between parallel and serial
/// execution.
#[test]
fn writers_and_readers_race_without_torn_epochs() {
    const WRITERS: usize = 3;
    const READERS: usize = 4;
    const TXNS_PER_WRITER: usize = 150;
    const READS_PER_READER: usize = 40;

    let (db, base_edges) = stress_db(WRITERS);
    let edge_query = db.prepare("(a)->(b)").unwrap();
    let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();

    std::thread::scope(|scope| {
        // Writers: each transaction deletes the writer's current live edge and inserts the
        // next one — the global edge count is invariant across every *committed* epoch, and
        // only a torn (non-atomic) publication could change it.
        for w in 0..WRITERS {
            let db = db.clone();
            scope.spawn(move || {
                let base = writer_base(w);
                for i in 0..TXNS_PER_WRITER {
                    let old = (base + (i as VertexId) % 50, base + 1 + (i as VertexId) % 50);
                    let new = (
                        base + (i as VertexId + 1) % 50,
                        base + 1 + (i as VertexId + 1) % 50,
                    );
                    let mut txn = db.begin_write();
                    assert!(txn.delete_edge(old.0, old.1, EDGE), "writer {w} txn {i}");
                    assert!(txn.insert_edge(new.0, new.1, EDGE), "writer {w} txn {i}");
                    txn.commit();
                }
            });
        }
        // Readers: pin a snapshot, check the writers' invariant on it, and check that the
        // parallel executor agrees with a serial re-run on the same pinned epoch.
        for r in 0..READERS {
            let edge_query = edge_query.clone();
            let triangles = triangles.clone();
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..READS_PER_READER {
                    let snap = db.snapshot();
                    let serial_edges = edge_query
                        .run_on(&snap, QueryOptions::default())
                        .unwrap()
                        .count;
                    assert_eq!(
                        serial_edges, base_edges as u64,
                        "reader {r} read {i}: a committed epoch broke the delete+insert \
                         invariant — torn transaction observed"
                    );
                    assert_eq!(snap.num_edges(), base_edges, "reader {r} read {i}");
                    let serial = triangles.run_on(&snap, QueryOptions::default()).unwrap();
                    let parallel = triangles
                        .run_on(&snap, QueryOptions::new().threads(4))
                        .unwrap();
                    assert_eq!(
                        parallel.count, serial.count,
                        "reader {r} read {i}: parallel run disagrees with serial re-run on \
                         the same pinned snapshot"
                    );
                }
            });
        }
    });

    // After the join: no lost updates. Every writer committed TXNS_PER_WRITER transactions,
    // so its live edge is the one its last transaction inserted.
    let snap = db.snapshot();
    assert_eq!(snap.num_edges(), base_edges);
    for w in 0..WRITERS {
        let base = writer_base(w);
        let i = (TXNS_PER_WRITER as VertexId) % 50;
        assert!(
            snap.has_edge(base + i, base + 1 + i, EDGE),
            "writer {w}'s final edge was lost"
        );
    }
    assert_eq!(
        edge_query.count().unwrap(),
        base_edges as u64,
        "final edge count must add up after all writers joined"
    );
}

/// A pinned snapshot is repeatable: the same query on the same snapshot returns the same
/// result before, during and after unrelated commits.
#[test]
fn pinned_snapshots_are_repeatable_across_commits() {
    let (db, _) = stress_db(1);
    let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    let pinned = db.snapshot();
    let before = triangles.run_on(&pinned, QueryOptions::default()).unwrap();

    // Commit a batch that adds brand-new triangles (fresh vertices, one atomic txn).
    let mut txn = db.begin_write();
    for t in 0..10u32 {
        let v = 5000 + 3 * t;
        txn.insert_edge(v, v + 1, EDGE);
        txn.insert_edge(v + 1, v + 2, EDGE);
        txn.insert_edge(v, v + 2, EDGE);
    }
    let epoch = txn.commit();
    assert!(epoch > 0);

    // The pinned snapshot still answers exactly as before; the live database moved on.
    let after = triangles.run_on(&pinned, QueryOptions::default()).unwrap();
    assert_eq!(before.count, after.count);
    assert_eq!(triangles.count().unwrap(), before.count + 10);

    // Serial, adaptive and parallel execution agree on the pinned epoch too.
    for opts in [
        QueryOptions::new().adaptive(true),
        QueryOptions::new().threads(4),
    ] {
        let run = triangles.run_on(&pinned, opts.clone()).unwrap();
        assert_eq!(run.count, before.count, "{opts:?}");
    }
}

/// The same owned prepared query executes concurrently from many threads, and concurrent
/// `prepare` calls share one plan through the thread-safe plan cache.
#[test]
fn owned_prepared_queries_execute_from_any_thread() {
    let (db, _) = stress_db(1);
    let pattern = "(a)->(b), (b)->(c), (a)->(c)";
    let prepared = db.prepare(pattern).unwrap();
    let expected = prepared.count().unwrap();

    let counts: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..6 {
            // Half the threads share the same statement (cloned), half re-prepare — which
            // must be served from the plan cache without a second optimizer run.
            if i % 2 == 0 {
                let prepared = prepared.clone();
                handles.push(scope.spawn(move || prepared.count().unwrap()));
            } else {
                let db = db.clone();
                handles.push(scope.spawn(move || {
                    let again = db.prepare(pattern).unwrap();
                    assert!(again.was_cached(), "thread-side prepare must hit the cache");
                    again.count().unwrap()
                }));
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(counts.iter().all(|&c| c == expected));
    assert_eq!(
        db.plan_cache_stats().misses,
        1,
        "exactly one optimizer run across all threads"
    );
}
