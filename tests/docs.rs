//! Keeps `docs/QUERY_LANGUAGE.md` honest: every fenced block tagged `graphflow` must parse
//! with the real parser, and every block tagged `graphflow-invalid` must fail to parse.

use graphflow_rs::query::{parse_query, split_mode};

const QUERY_LANGUAGE_MD: &str = include_str!("../docs/QUERY_LANGUAGE.md");

/// The non-comment, non-empty lines of every fenced block carrying `tag`.
fn snippets(tag: &str) -> Vec<String> {
    let fence = format!("```{tag}");
    let mut out = Vec::new();
    let mut in_block = false;
    for line in QUERY_LANGUAGE_MD.lines() {
        let trimmed = line.trim();
        if in_block {
            if trimmed == "```" {
                in_block = false;
                continue;
            }
            if !trimmed.is_empty() && !trimmed.starts_with('#') {
                out.push(trimmed.to_string());
            }
        } else if trimmed == fence {
            in_block = true;
        }
    }
    out
}

#[test]
fn every_query_language_snippet_parses() {
    let queries = snippets("graphflow");
    assert!(
        queries.len() >= 30,
        "the reference should stay example-rich (found {})",
        queries.len()
    );
    for query in &queries {
        // Snippets may carry an EXPLAIN/PROFILE verb prefix; the pattern after it must parse.
        let (_, rest) = split_mode(query);
        parse_query(rest).unwrap_or_else(|e| {
            panic!("docs/QUERY_LANGUAGE.md snippet failed to parse:\n  {query}\n  {e}")
        });
    }
}

#[test]
fn every_invalid_snippet_is_rejected() {
    let queries = snippets("graphflow-invalid");
    assert!(!queries.is_empty(), "the error section must stay populated");
    for query in &queries {
        assert!(
            parse_query(query).is_err(),
            "docs/QUERY_LANGUAGE.md claims this is invalid, but it parses:\n  {query}"
        );
    }
}

/// Display round-trip: the canonical form of every valid snippet re-parses, and re-displays
/// identically (a fixed point), so the reference's syntax and the engine's own printer
/// agree. Vertex numbering may legitimately differ (`(a)<-(b)` prints source-first), so the
/// queries are compared through their displayed forms, not by value.
#[test]
fn snippets_round_trip_through_display() {
    for query in snippets("graphflow") {
        let q = parse_query(split_mode(&query).1).unwrap();
        let shown = q.to_string();
        let reparsed = parse_query(&shown).unwrap_or_else(|e| {
            panic!("canonical form of {query} failed to reparse: {shown}: {e}")
        });
        assert_eq!(
            shown,
            reparsed.to_string(),
            "display fixed point of {query}"
        );
    }
}
