//! Differential tests for typed-property predicate pushdown.
//!
//! The executable property of the whole predicate subsystem is simple: **pushing predicates
//! into the pipeline must not change what a query returns** — it may only make execution
//! cheaper. This harness checks exactly that, at scale, against a naive oracle:
//!
//! * random graphs with random typed vertex/edge properties (with plenty of missing values),
//! * random pattern queries with random `WHERE` clauses,
//! * executed by all three executors (serial, adaptive, parallel) with pushdown,
//! * compared tuple-for-tuple against *match the bare pattern, then post-filter with
//!   [`Predicate::eval`]* — the reference semantics,
//! * on both frozen CSRs and dirty snapshots mid-way through random update sequences.
//!
//! A final test asserts the pushdown is real: a selective predicate must drop tuples early
//! (`predicate_drops > 0`) and shrink intermediate results versus the unfiltered run.

use graphflow_rs::graph::{EdgeLabel, GraphBuilder, PropValue, VertexLabel};
use graphflow_rs::query::QueryGraph;
use graphflow_rs::{GraphflowDB, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One pattern template: the textual pattern plus the variables a WHERE clause may reference.
struct Template {
    pattern: &'static str,
    vertex_vars: &'static [&'static str],
    edge_vars: &'static [&'static str],
}

const TEMPLATES: &[Template] = &[
    Template {
        pattern: "(a)-[e1]->(b)",
        vertex_vars: &["a", "b"],
        edge_vars: &["e1"],
    },
    Template {
        pattern: "(a)-[e1]->(b), (b)-[e2]->(c)",
        vertex_vars: &["a", "b", "c"],
        edge_vars: &["e1", "e2"],
    },
    Template {
        pattern: "(a)-[e1]->(b), (b)-[e2]->(a)",
        vertex_vars: &["a", "b"],
        edge_vars: &["e1", "e2"],
    },
    Template {
        pattern: "(a)-[e1]->(b), (b)-[e2]->(c), (a)-[e3]->(c)",
        vertex_vars: &["a", "b", "c"],
        edge_vars: &["e1", "e2", "e3"],
    },
    Template {
        pattern: "(a)-[e1]->(b), (a)-[e2]->(c), (b)-[e3]->(c), (b)-[e4]->(d), (c)-[e5]->(d)",
        vertex_vars: &["a", "b", "c", "d"],
        edge_vars: &["e1", "e2", "e3", "e4", "e5"],
    },
];

const STRINGS: &[&str] = &["red", "blue", "green", "purple"];

fn rand_float(rng: &mut StdRng) -> f64 {
    rng.gen_range(0u32..1000) as f64 / 1000.0
}

/// A random property graph: vertices carry `age`/`score`/`flag`/`tag` and edges carry
/// `w`/`cnt`, each with deliberate gaps so missing-property semantics get exercised.
fn random_db(rng: &mut StdRng) -> GraphflowDB {
    let n: u32 = rng.gen_range(25u32..50);
    let m = rng.gen_range(2 * n..3 * n);
    let num_edge_labels: u16 = rng.gen_range(1u16..3);
    let mut b = GraphBuilder::with_vertices(n as usize);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            b.add_labelled_edge(s, d, EdgeLabel(rng.gen_range(0..num_edge_labels)));
        }
    }
    for v in 0..n {
        if rng.gen_bool(0.8) {
            b.set_vertex_prop(v, "age", PropValue::Int(rng.gen_range(0u32..100) as i64))
                .unwrap();
        }
        if rng.gen_bool(0.7) {
            b.set_vertex_prop(v, "score", PropValue::Float(rand_float(rng)))
                .unwrap();
        }
        if rng.gen_bool(0.5) {
            b.set_vertex_prop(v, "flag", PropValue::Bool(rng.gen_bool(0.5)))
                .unwrap();
        }
        if rng.gen_bool(0.6) {
            let tag = STRINGS[rng.gen_range(0..STRINGS.len())];
            b.set_vertex_prop(v, "tag", PropValue::str(tag)).unwrap();
        }
    }
    let edges: Vec<_> = b.clone().build().edges().to_vec();
    for (s, d, l) in edges {
        if rng.gen_bool(0.8) {
            b.set_edge_prop(s, d, l, "w", PropValue::Float(rand_float(rng)))
                .unwrap();
        }
        if rng.gen_bool(0.4) {
            b.set_edge_prop(
                s,
                d,
                l,
                "cnt",
                PropValue::Int(rng.gen_range(0u32..10) as i64),
            )
            .unwrap();
        }
    }
    GraphflowDB::from_graph(b.build())
}

/// A random comparison over one of the template's variables, written in query syntax.
fn random_comparison(rng: &mut StdRng, t: &Template) -> String {
    let ops = ["<", "<=", ">", ">=", "=", "!="];
    let op = ops[rng.gen_range(0..ops.len())];
    let on_vertex = t.edge_vars.is_empty() || rng.gen_bool(0.6);
    if on_vertex {
        let var = t.vertex_vars[rng.gen_range(0..t.vertex_vars.len())];
        match rng.gen_range(0u32..4) {
            0 => format!("{var}.age {op} {}", rng.gen_range(0u32..100)),
            1 => format!("{var}.score {op} {}", PropValue::Float(rand_float(rng))),
            2 => format!(
                "{var}.flag {} {}",
                if rng.gen_bool(0.5) { "=" } else { "!=" },
                rng.gen_bool(0.5)
            ),
            _ => format!(
                "{var}.tag {} \"{}\"",
                if rng.gen_bool(0.5) { "=" } else { op },
                STRINGS[rng.gen_range(0..STRINGS.len())]
            ),
        }
    } else {
        let var = t.edge_vars[rng.gen_range(0..t.edge_vars.len())];
        if rng.gen_bool(0.7) {
            format!("{var}.w {op} {}", PropValue::Float(rand_float(rng)))
        } else {
            format!("{var}.cnt {op} {}", rng.gen_range(0u32..10))
        }
    }
}

/// Match the bare pattern, then post-filter full tuples with the reference predicate
/// semantics — the oracle every pushdown execution must reproduce exactly.
fn oracle_tuples(db: &GraphflowDB, q: &QueryGraph, pattern_only: &str) -> Vec<Vec<u32>> {
    let unfiltered = db
        .run(
            pattern_only,
            QueryOptions::new()
                .collect_tuples(true)
                .collect_limit(usize::MAX),
        )
        .unwrap();
    let snapshot = db.snapshot();
    let mut tuples: Vec<Vec<u32>> = unfiltered
        .tuples
        .into_iter()
        .filter(|t| q.predicates().iter().all(|p| p.eval(q, t, &snapshot)))
        .collect();
    tuples.sort_unstable();
    tuples
}

/// Run `query` through every executor with pushdown and compare against the oracle.
/// Returns the number of matches (so callers can keep coverage statistics).
fn check_case(db: &GraphflowDB, query: &str, context: &str) -> usize {
    let q = db.parse(query).unwrap();
    assert!(
        q.has_predicates(),
        "harness always generates a WHERE clause"
    );
    let pattern_only = query.split(" WHERE ").next().unwrap();
    let expected = oracle_tuples(db, &q, pattern_only);

    for (name, options) in [
        ("serial", QueryOptions::new()),
        ("adaptive", QueryOptions::new().adaptive(true)),
        ("parallel", QueryOptions::new().threads(4)),
    ] {
        let out = db
            .run(
                query,
                options.collect_tuples(true).collect_limit(usize::MAX),
            )
            .unwrap();
        let mut got = out.tuples.clone();
        got.sort_unstable();
        assert_eq!(
            got, expected,
            "{context}: {name} pushdown of {query} disagrees with the post-filter oracle"
        );
        assert_eq!(
            out.count as usize,
            expected.len(),
            "{context}: {name} count"
        );
    }
    expected.len()
}

/// Apply a random burst of structural and property updates, leaving the snapshot dirty.
fn random_updates(db: &mut GraphflowDB, rng: &mut StdRng) {
    let ops = rng.gen_range(8usize..16);
    for _ in 0..ops {
        let n = db.snapshot().base().num_vertices() as u32 + 2;
        match rng.gen_range(0u32..5) {
            0 => {
                let v = db
                    .insert_vertex_with_props(
                        VertexLabel(0),
                        &[("age", PropValue::Int(rng.gen_range(0u32..100) as i64))],
                    )
                    .unwrap();
                let to = rng.gen_range(0..n);
                db.insert_edge(v, to, EdgeLabel(0));
            }
            1 => {
                db.insert_edge(rng.gen_range(0..n), rng.gen_range(0..n), EdgeLabel(0));
            }
            2 => {
                let edges = db.graph().edges().to_vec();
                if !edges.is_empty() {
                    let (s, d, l) = edges[rng.gen_range(0..edges.len())];
                    db.delete_edge(s, d, l);
                }
            }
            3 => {
                let v = rng.gen_range(0..db.snapshot().base().num_vertices() as u32);
                let value = match rng.gen_range(0u32..2) {
                    0 => PropValue::Int(rng.gen_range(0u32..100) as i64),
                    _ => PropValue::Int(-5),
                };
                let _ = db.set_vertex_prop(v, "age", value);
            }
            _ => {
                let edges = db.graph().edges().to_vec();
                if !edges.is_empty() {
                    let (s, d, l) = edges[rng.gen_range(0..edges.len())];
                    let _ = db.set_edge_prop(s, d, l, "w", PropValue::Float(rand_float(rng)));
                }
            }
        }
    }
    assert!(
        db.snapshot().has_pending_deltas() || db.graph_version() > 0,
        "updates applied"
    );
}

/// The differential harness: >= 200 randomized (graph, properties, query) cases across all
/// three executors, on frozen and dirty snapshots.
#[test]
fn pushdown_matches_post_filter_oracle() {
    let mut cases = 0usize;
    let mut nonempty = 0usize;
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0xF11 + seed);
        let mut db = random_db(&mut rng);
        let mut queries = Vec::new();
        for _ in 0..4 {
            let t = &TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
            let num_preds = rng.gen_range(1usize..4);
            let clause: Vec<String> = (0..num_preds)
                .map(|_| random_comparison(&mut rng, t))
                .collect();
            queries.push(format!("{} WHERE {}", t.pattern, clause.join(" AND ")));
        }
        // Frozen CSR.
        for query in &queries {
            if check_case(&db, query, &format!("seed {seed} frozen")) > 0 {
                nonempty += 1;
            }
            cases += 1;
        }
        // Dirty snapshot mid-way through a random update sequence.
        random_updates(&mut db, &mut rng);
        for query in &queries {
            if check_case(&db, query, &format!("seed {seed} dirty")) > 0 {
                nonempty += 1;
            }
            cases += 1;
        }
    }
    assert!(cases >= 200, "only {cases} differential cases were run");
    assert!(
        nonempty >= cases / 10,
        "too many vacuous cases ({nonempty}/{cases} non-empty): selectivities are off"
    );
}

/// Pushdown is not post-filtering in disguise: a selective predicate must drop candidates
/// before they expand (`predicate_drops > 0`) and must shrink the intermediate result stream
/// relative to the unfiltered run of the same pattern.
#[test]
fn pushdown_filters_early_not_late() {
    let mut b = GraphBuilder::new();
    // A dense-ish random graph with ages striped across vertices.
    let mut rng = StdRng::seed_from_u64(99);
    let n = 120u32;
    for _ in 0..6 * n {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            b.add_edge(s, d);
        }
    }
    for v in 0..n {
        b.set_vertex_prop(v, "age", PropValue::Int(v as i64))
            .unwrap();
    }
    let db = GraphflowDB::from_graph(b.build());
    let pattern = "(a)->(b), (b)->(c), (a)->(c)";
    let unfiltered = db.run(pattern, QueryOptions::new()).unwrap();
    assert!(unfiltered.count > 0, "graph must contain triangles");

    let filtered = db
        .run(&format!("{pattern} WHERE a.age < 6"), QueryOptions::new())
        .unwrap();
    assert!(filtered.count < unfiltered.count);
    assert!(
        filtered.stats.predicate_drops > 0,
        "the plan must demonstrably filter at scan/extend time"
    );
    assert!(
        filtered.stats.intermediate_tuples < unfiltered.stats.intermediate_tuples,
        "pushdown must shrink intermediates: filtered {} vs unfiltered {}",
        filtered.stats.intermediate_tuples,
        unfiltered.stats.intermediate_tuples
    );
    // And it still returns exactly the right answer.
    let q = db.parse(&format!("{pattern} WHERE a.age < 6")).unwrap();
    let expected = {
        let all = db
            .run(
                pattern,
                QueryOptions::new()
                    .collect_tuples(true)
                    .collect_limit(usize::MAX),
            )
            .unwrap();
        let snap = db.snapshot();
        all.tuples
            .iter()
            .filter(|t| q.predicates().iter().all(|p| p.eval(&q, t, &snap)))
            .count() as u64
    };
    assert_eq!(filtered.count, expected);
}
