//! Property-based integration tests: on random graphs and random queries, every component of
//! the workspace must agree with the reference matcher and with each other.

use graphflow_baselines::{backtracking_count, BacktrackOptions};
use graphflow_catalog::{count_matches, Catalogue};
use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{Graph, GraphBuilder};
use graphflow_plan::cost::CostModel;
use graphflow_plan::spectrum::{enumerate_spectrum, SpectrumLimits};
use graphflow_query::patterns;
use graphflow_query::QueryGraph;
use proptest::prelude::*;
use std::sync::Arc;

/// A random small directed graph described by an edge list over `n` vertices.
fn arb_graph() -> impl Strategy<Value = Arc<Graph>> {
    (8usize..40, proptest::collection::vec((0u32..40, 0u32..40), 10..200)).prop_map(|(n, edges)| {
        let n = n as u32;
        let mut b = GraphBuilder::with_vertices(n as usize);
        for (s, d) in edges {
            let (s, d) = (s % n, d % n);
            if s != d {
                b.add_edge(s, d);
            }
        }
        Arc::new(b.build())
    })
}

/// One of the small benchmark queries (kept to 5 vertices so spectra stay tiny).
fn arb_query() -> impl Strategy<Value = QueryGraph> {
    prop_oneof![
        Just(patterns::benchmark_query(1)),
        Just(patterns::benchmark_query(2)),
        Just(patterns::benchmark_query(3)),
        Just(patterns::benchmark_query(4)),
        Just(patterns::benchmark_query(5)),
        Just(patterns::benchmark_query(8)),
        Just(patterns::benchmark_query(11)),
        Just(patterns::directed_path(4)),
        Just(patterns::out_star(4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer's plan, the adaptive executor and the parallel executor agree with the
    /// reference matcher on random graphs.
    #[test]
    fn optimizer_and_executors_agree_with_reference(graph in arb_graph(), q in arb_query()) {
        let expected = count_matches(&graph, &q);
        let db = GraphflowDB::with_config(graph.clone(), Default::default());
        let fixed = db.run_query(&q, QueryOptions::default()).unwrap();
        prop_assert_eq!(fixed.count, expected);
        let adaptive = db.run_query(&q, QueryOptions { adaptive: true, ..Default::default() }).unwrap();
        prop_assert_eq!(adaptive.count, expected);
        let parallel = db.run_query(&q, QueryOptions { threads: 3, ..Default::default() }).unwrap();
        prop_assert_eq!(parallel.count, expected);
    }

    /// Every plan of the (capped) spectrum produces the same count.
    #[test]
    fn spectrum_plans_agree(graph in arb_graph(), q in arb_query()) {
        let expected = count_matches(&graph, &q);
        let cat = Catalogue::with_defaults(graph.clone());
        let spectrum = enumerate_spectrum(&q, &cat, &CostModel::default(), SpectrumLimits {
            max_plans_per_subset: 8,
            max_plans_per_class: 6,
        });
        for sp in spectrum {
            let out = graphflow_exec::execute(&graph, &sp.plan);
            prop_assert_eq!(out.count, expected);
        }
    }

    /// The backtracking baseline agrees with the reference matcher.
    #[test]
    fn backtracking_agrees(graph in arb_graph(), q in arb_query()) {
        let expected = count_matches(&graph, &q);
        prop_assert_eq!(backtracking_count(&graph, &q, BacktrackOptions::default()), expected);
    }

    /// Catalogue estimates are always finite and non-negative, and exact for single edges.
    #[test]
    fn catalogue_estimates_are_sane(graph in arb_graph(), q in arb_query()) {
        let cat = Catalogue::with_defaults(graph.clone());
        let card = cat.estimate_cardinality(&q, q.full_set());
        prop_assert!(card.is_finite());
        prop_assert!(card >= 0.0);
        // Single query edge estimates are exact counts.
        let edge = &q.edges()[0];
        let set = graphflow_query::querygraph::singleton(edge.src)
            | graphflow_query::querygraph::singleton(edge.dst);
        let est = cat.estimate_cardinality(&q, set);
        let exact = cat.exact_cardinality(&q, set) as f64;
        prop_assert!((est - exact).abs() < 1e-6 || q.edges_within(set).len() > 1);
    }

    /// Execution with the intersection cache disabled never changes the answer and never
    /// reports cache hits.
    #[test]
    fn cache_toggle_preserves_counts(graph in arb_graph()) {
        let q = patterns::diamond_x();
        let db = GraphflowDB::with_config(graph.clone(), Default::default());
        let with_cache = db.run_query(&q, QueryOptions::default()).unwrap();
        let without = db.run_query(&q, QueryOptions { intersection_cache: false, ..Default::default() }).unwrap();
        prop_assert_eq!(with_cache.count, without.count);
        prop_assert_eq!(without.stats.cache_hits, 0);
        prop_assert!(with_cache.stats.icost <= without.stats.icost);
    }
}
