//! Property-style integration tests: on seeded random graphs and random queries, every
//! component of the workspace must agree with the reference matcher and with each other.
//!
//! Implemented as deterministic loops over seeded random inputs (no external property-testing
//! harness): each case draws a random graph and query shape, and failures print the seed-like
//! case index for reproduction.

use graphflow_baselines::{backtracking_count, BacktrackOptions};
use graphflow_catalog::{count_matches, Catalogue};
use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{Graph, GraphBuilder};
use graphflow_plan::cost::CostModel;
use graphflow_plan::spectrum::{enumerate_spectrum, SpectrumLimits};
use graphflow_query::patterns;
use graphflow_query::QueryGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: usize = 24;

/// A random small directed graph over 8..40 vertices with 10..200 edge attempts.
fn random_graph(rng: &mut StdRng) -> Arc<Graph> {
    let n = rng.gen_range(8u32..40);
    let num_edges = rng.gen_range(10usize..200);
    let mut b = GraphBuilder::with_vertices(n as usize);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            b.add_edge(s, d);
        }
    }
    Arc::new(b.build())
}

/// One of the small benchmark queries (kept to 5 vertices so spectra stay tiny).
fn random_query(rng: &mut StdRng) -> QueryGraph {
    match rng.gen_range(0usize..9) {
        0 => patterns::benchmark_query(1),
        1 => patterns::benchmark_query(2),
        2 => patterns::benchmark_query(3),
        3 => patterns::benchmark_query(4),
        4 => patterns::benchmark_query(5),
        5 => patterns::benchmark_query(8),
        6 => patterns::benchmark_query(11),
        7 => patterns::directed_path(4),
        _ => patterns::out_star(4),
    }
}

/// The optimizer's plan, the adaptive executor and the parallel executor agree with the
/// reference matcher on random graphs.
#[test]
fn optimizer_and_executors_agree_with_reference() {
    let mut rng = StdRng::seed_from_u64(1001);
    for case in 0..CASES {
        let graph = random_graph(&mut rng);
        let q = random_query(&mut rng);
        let expected = count_matches(&graph, &q);
        let db = GraphflowDB::with_config(graph.clone(), Default::default());
        let fixed = db.run_query(&q, QueryOptions::default()).unwrap();
        assert_eq!(fixed.count, expected, "case {case}: fixed");
        let adaptive = db
            .run_query(&q, QueryOptions::new().adaptive(true))
            .unwrap();
        assert_eq!(adaptive.count, expected, "case {case}: adaptive");
        let parallel = db.run_query(&q, QueryOptions::new().threads(3)).unwrap();
        assert_eq!(parallel.count, expected, "case {case}: parallel");
    }
}

/// Every plan of the (capped) spectrum produces the same count.
#[test]
fn spectrum_plans_agree() {
    let mut rng = StdRng::seed_from_u64(2002);
    for case in 0..CASES {
        let graph = random_graph(&mut rng);
        let q = random_query(&mut rng);
        let expected = count_matches(&graph, &q);
        let cat = Catalogue::with_defaults(graph.clone());
        let spectrum = enumerate_spectrum(
            &q,
            &cat,
            &CostModel::default(),
            SpectrumLimits {
                max_plans_per_subset: 8,
                max_plans_per_class: 6,
            },
        );
        for sp in spectrum {
            let out = graphflow_exec::execute(&graph, &sp.plan);
            assert_eq!(out.count, expected, "case {case}");
        }
    }
}

/// The backtracking baseline agrees with the reference matcher.
#[test]
fn backtracking_agrees() {
    let mut rng = StdRng::seed_from_u64(3003);
    for case in 0..CASES {
        let graph = random_graph(&mut rng);
        let q = random_query(&mut rng);
        let expected = count_matches(&graph, &q);
        assert_eq!(
            backtracking_count(&graph, &q, BacktrackOptions::default()),
            expected,
            "case {case}"
        );
    }
}

/// Catalogue estimates are always finite and non-negative, and exact for single edges.
#[test]
fn catalogue_estimates_are_sane() {
    let mut rng = StdRng::seed_from_u64(4004);
    for case in 0..CASES {
        let graph = random_graph(&mut rng);
        let q = random_query(&mut rng);
        let cat = Catalogue::with_defaults(graph.clone());
        let card = cat.estimate_cardinality(&q, q.full_set());
        assert!(card.is_finite(), "case {case}");
        assert!(card >= 0.0, "case {case}");
        // Single query edge estimates are exact counts.
        let edge = &q.edges()[0];
        let set = graphflow_query::querygraph::singleton(edge.src)
            | graphflow_query::querygraph::singleton(edge.dst);
        let est = cat.estimate_cardinality(&q, set);
        let exact = cat.exact_cardinality(&q, set) as f64;
        assert!(
            (est - exact).abs() < 1e-6 || q.edges_within(set).len() > 1,
            "case {case}: est {est} vs exact {exact}"
        );
    }
}

/// Execution with the intersection cache disabled never changes the answer and never reports
/// cache hits.
#[test]
fn cache_toggle_preserves_counts() {
    let mut rng = StdRng::seed_from_u64(5005);
    for case in 0..CASES {
        let graph = random_graph(&mut rng);
        let q = patterns::diamond_x();
        let db = GraphflowDB::with_config(graph.clone(), Default::default());
        let with_cache = db.run_query(&q, QueryOptions::default()).unwrap();
        let without = db
            .run_query(&q, QueryOptions::new().intersection_cache(false))
            .unwrap();
        assert_eq!(with_cache.count, without.count, "case {case}");
        assert_eq!(without.stats.cache_hits, 0, "case {case}");
        assert!(with_cache.stats.icost <= without.stats.icost, "case {case}");
    }
}

/// Streaming a prepared query through a sink always agrees with the counting path, and the
/// plan cache serves every repetition of the same shape from a single optimizer run.
#[test]
fn prepared_streaming_agrees_with_counting() {
    let mut rng = StdRng::seed_from_u64(6006);
    for case in 0..CASES / 2 {
        let graph = random_graph(&mut rng);
        let q = random_query(&mut rng);
        let db = GraphflowDB::with_config(graph.clone(), Default::default());
        let prepared = db.prepare_query(q.clone()).unwrap();
        let expected = prepared.count().unwrap();
        let mut streamed = 0u64;
        {
            let mut sink = graphflow_core::CallbackSink::new(|_t: &[u32]| {
                streamed += 1;
                true
            });
            prepared
                .run_with_sink(QueryOptions::new(), &mut sink)
                .unwrap();
        }
        assert_eq!(streamed, expected, "case {case}");
        // However many times the statement ran, the shape was optimized exactly once, and
        // preparing it again is a cache hit.
        assert_eq!(
            db.plan_cache_stats().misses,
            1,
            "case {case}: one optimizer run per shape"
        );
        assert!(db.prepare_query(q).unwrap().was_cached(), "case {case}");
        assert_eq!(db.plan_cache_stats().hits, 1, "case {case}");
    }
}
