//! Update/rebuild equivalence properties of the dynamic graph subsystem.
//!
//! The central invariant: after any sequence of random inserts and deletes (self-loops and
//! duplicate/no-op updates included), queries against the live snapshot return exactly what
//! they return on a graph rebuilt from scratch out of the merged edge set — and `compact()`
//! changes nothing observable.

use graphflow_catalog::count_matches;
use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{EdgeLabel, Graph, GraphBuilder, GraphView, Update, VertexLabel};
use graphflow_query::parse_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The model: the set of edges that should exist, maintained with plain set arithmetic.
type EdgeSet = BTreeSet<(u32, u32, u16)>;

fn reference_graph(num_vertices: usize, edges: &EdgeSet) -> Graph {
    let mut b = GraphBuilder::with_vertices(num_vertices);
    for &(s, d, l) in edges {
        b.add_labelled_edge(s, d, EdgeLabel(l));
    }
    b.build()
}

const PATTERNS: &[&str] = &[
    "(a)->(b), (b)->(c), (a)->(c)",
    "(a)->(b), (a)->(c), (b)->(c), (b)->(d), (c)->(d)",
    "(a)->(b), (b)->(c)",
    "(a)->(b), (b)->(a)",
];

/// Assert every pattern counts identically on the live database and on a from-scratch rebuild.
fn assert_equivalent(db: &GraphflowDB, num_vertices: usize, model: &EdgeSet, context: &str) {
    let rebuilt = reference_graph(num_vertices, model);
    rebuilt.check_invariants().unwrap();
    let snap = db.snapshot();
    assert_eq!(snap.num_edges(), model.len(), "{context}: edge count");
    assert_eq!(snap.num_vertices(), num_vertices, "{context}: vertex count");
    for pattern in PATTERNS {
        let q = parse_query(pattern).unwrap();
        let expected = count_matches(&rebuilt, &q);
        assert_eq!(
            db.count(pattern).unwrap(),
            expected,
            "{context}: pattern {pattern}"
        );
        // The snapshot handle answers the reference matcher identically.
        assert_eq!(
            count_matches(&snap, &q),
            expected,
            "{context}: snapshot matcher {pattern}"
        );
    }
}

#[test]
fn random_update_sequences_match_from_scratch_rebuilds() {
    for seed in [1u64, 7, 1234] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut num_vertices = 24usize;
        let mut model: EdgeSet = EdgeSet::new();
        let mut b = GraphBuilder::with_vertices(num_vertices);
        for _ in 0..70 {
            let s = rng.gen_range(0..num_vertices as u32);
            let d = rng.gen_range(0..num_vertices as u32);
            b.add_edge(s, d);
            model.insert((s, d, 0));
        }
        // Disable auto-compaction so rounds genuinely accumulate deltas over the base CSR.
        let db = GraphflowDB::builder(b.build())
            .compact_threshold(usize::MAX)
            .build();

        for round in 0..6 {
            let mut batch = Vec::new();
            for _ in 0..15 {
                let n = num_vertices as u32;
                match rng.gen_range(0..10u32) {
                    // Insert a random edge — possibly a self-loop or an existing duplicate.
                    0..=4 => {
                        let (src, dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
                        batch.push(Update::InsertEdge {
                            src,
                            dst,
                            label: EdgeLabel(0),
                        });
                        model.insert((src, dst, 0));
                    }
                    // Delete a random existing edge (or a miss when the model is empty).
                    5..=8 => {
                        if let Some(&(src, dst, l)) = {
                            let skip = if model.is_empty() {
                                0
                            } else {
                                rng.gen_range(0..model.len())
                            };
                            model.iter().nth(skip)
                        } {
                            batch.push(Update::DeleteEdge {
                                src,
                                dst,
                                label: EdgeLabel(l),
                            });
                            model.remove(&(src, dst, l));
                        } else {
                            // Empty model: delete a definitely-missing edge (a no-op).
                            batch.push(Update::DeleteEdge {
                                src: 0,
                                dst: 1,
                                label: EdgeLabel(0),
                            });
                        }
                    }
                    // Occasionally grow the vertex set.
                    _ => {
                        batch.push(Update::InsertVertex {
                            label: VertexLabel(0),
                        });
                        num_vertices += 1;
                    }
                }
            }
            // Replay the first insert at the end of the batch: a duplicate no-op unless a
            // mid-batch delete removed that edge, in which case it is a genuine re-insert —
            // the model replays it either way.
            if let Some(first @ Update::InsertEdge { src, dst, label }) = batch.first().cloned() {
                batch.push(first);
                model.insert((src, dst, label.0));
            }
            db.apply_batch(&batch);
            assert_equivalent(
                &db,
                num_vertices,
                &model,
                &format!("seed {seed} round {round}"),
            );
        }

        // Compaction must be results-neutral.
        assert!(db.snapshot().has_pending_deltas() || model.is_empty());
        db.compact();
        assert!(!db.snapshot().has_pending_deltas());
        assert_equivalent(
            &db,
            num_vertices,
            &model,
            &format!("seed {seed} post-compact"),
        );
    }
}

#[test]
fn executors_agree_on_dirty_snapshots() {
    let mut rng = StdRng::seed_from_u64(99);
    let edges = graphflow_graph::generator::powerlaw_cluster(250, 4, 0.5, 31);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    let db = GraphflowDB::builder(b.build())
        .compact_threshold(usize::MAX)
        .build();
    // Churn ~10% of the graph so plenty of vertices carry overlays.
    let victims: Vec<_> = db.graph().edges().to_vec();
    for &(s, d, l) in victims.iter().take(40) {
        db.delete_edge(s, d, l);
    }
    let n = db.graph().num_vertices() as u32;
    for _ in 0..40 {
        let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
        db.insert_edge(s, d, EdgeLabel(0));
    }
    assert!(db.snapshot().has_pending_deltas());

    for pattern in PATTERNS {
        let serial = db.run(pattern, QueryOptions::default()).unwrap();
        let adaptive = db.run(pattern, QueryOptions::new().adaptive(true)).unwrap();
        let parallel = db.run(pattern, QueryOptions::new().threads(4)).unwrap();
        assert_eq!(serial.count, adaptive.count, "{pattern}");
        assert_eq!(serial.count, parallel.count, "{pattern}");
    }

    // Tuple-level equivalence for the triangle: live snapshot vs rebuilt graph.
    let q = parse_query(PATTERNS[0]).unwrap();
    let mut live = db
        .run(PATTERNS[0], QueryOptions::new().collect_tuples(true))
        .unwrap()
        .tuples;
    let rebuilt = GraphBuilder::from_view(&db.snapshot()).build();
    let mut reference = graphflow_catalog::enumerate_matches(&rebuilt, &q);
    live.sort_unstable();
    reference.sort_unstable();
    assert_eq!(live, reference);
}

#[test]
fn self_loops_and_duplicates_round_trip() {
    let mut b = GraphBuilder::with_vertices(4);
    b.add_edge(0, 1);
    b.add_edge(1, 1); // base self-loop, kept by the builder
    let db = GraphflowDB::builder(b.build())
        .compact_threshold(usize::MAX)
        .build();

    assert!(db.insert_edge(2, 2, EdgeLabel(0)), "delta self-loop");
    assert!(
        !db.insert_edge(1, 1, EdgeLabel(0)),
        "duplicate of a base self-loop"
    );
    assert!(
        !db.insert_edge(0, 1, EdgeLabel(0)),
        "duplicate of a base edge"
    );
    assert!(
        db.delete_edge(1, 1, EdgeLabel(0)),
        "delete a base self-loop"
    );
    assert!(!db.delete_edge(1, 1, EdgeLabel(0)), "double delete");

    let model: EdgeSet = [(0, 1, 0), (2, 2, 0)].into_iter().collect();
    assert_equivalent(&db, 4, &model, "self-loops");

    db.compact();
    assert_equivalent(&db, 4, &model, "self-loops post-compact");
    db.graph().check_invariants().unwrap();
}
