//! Deadline and cancellation coverage: pathological queries must come back as typed errors —
//! promptly — on all three executors, and a `QueryHandle` must be cancellable from another
//! thread.

use graphflow_core::{CancellationToken, Error, GraphflowDB, QueryOptions};
use graphflow_graph::GraphBuilder;
use std::time::{Duration, Instant};

/// A complete directed graph: every ordered pair is an edge, so a 5-clique pattern has an
/// astronomically large match set — the "query from hell" that deadlines exist for.
fn dense_db(n: u32) -> GraphflowDB {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(i, j);
            }
        }
    }
    GraphflowDB::from_graph(b.build())
}

/// All forward edges of a 5-vertex clique (a DAG, so matches are ordered 5-subsets).
const CLIQUE5: &str = "(a)->(b), (a)->(c), (a)->(d), (a)->(e), \
                       (b)->(c), (b)->(d), (b)->(e), (c)->(d), (c)->(e), (d)->(e)";

#[test]
fn huge_query_times_out_promptly_on_all_three_executors() {
    let db = dense_db(60);
    let clique = db.prepare(CLIQUE5).unwrap();
    for opts in [
        QueryOptions::new(),
        QueryOptions::new().adaptive(true),
        QueryOptions::new().threads(4),
    ] {
        let started = Instant::now();
        let result = clique.run(opts.clone().timeout(Duration::from_millis(1)));
        let elapsed = started.elapsed();
        assert!(
            matches!(result, Err(Error::Timeout)),
            "expected Err(Timeout), got {result:?} ({opts:?})"
        );
        // "Promptly": worst case is one batch of work past the deadline. Allow generous CI
        // slack — the query itself would run for minutes.
        assert!(
            elapsed < Duration::from_secs(5),
            "timeout took {elapsed:?} to land ({opts:?})"
        );
    }
    // The error formats as a typed, human-readable condition.
    let err = clique
        .run(QueryOptions::new().timeout(Duration::from_millis(1)))
        .unwrap_err();
    assert_eq!(err.to_string(), "query timed out");
}

#[test]
fn generous_deadline_does_not_disturb_results() {
    let db = dense_db(12);
    let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    let expected = triangles.count().unwrap();
    for opts in [
        QueryOptions::new(),
        QueryOptions::new().adaptive(true),
        QueryOptions::new().threads(4),
    ] {
        let run = triangles
            .run(opts.timeout(Duration::from_secs(120)))
            .unwrap();
        assert_eq!(run.count, expected);
        assert!(!run.stats.timed_out && !run.stats.cancelled);
    }
}

#[test]
fn query_handle_cancels_from_another_thread() {
    let db = dense_db(60);
    let clique = db.prepare(CLIQUE5).unwrap();
    for opts in [
        QueryOptions::new(),
        QueryOptions::new().adaptive(true),
        QueryOptions::new().threads(4),
    ] {
        let handle = clique.execute_handle(opts.clone());
        // Let the query sink its teeth in, then cancel from this (another) thread.
        std::thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        handle.cancel();
        let result = handle.join();
        let elapsed = started.elapsed();
        assert!(
            matches!(result, Err(Error::Cancelled)),
            "expected Err(Cancelled), got {result:?} ({opts:?})"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "cancellation took {elapsed:?} to land ({opts:?})"
        );
    }
}

#[test]
fn pre_cancelled_token_stops_the_run_immediately() {
    let db = dense_db(60);
    let clique = db.prepare(CLIQUE5).unwrap();
    let token = CancellationToken::new();
    token.cancel();
    let started = Instant::now();
    let result = clique.run(QueryOptions::new().cancel_token(token.clone()));
    assert!(matches!(result, Err(Error::Cancelled)), "{result:?}");
    assert!(started.elapsed() < Duration::from_secs(2));
    // The token is sticky: reusing it cancels the next run too.
    assert!(matches!(
        clique.run(QueryOptions::new().cancel_token(token)),
        Err(Error::Cancelled)
    ));
}

#[test]
fn execute_handle_returns_results_when_not_cancelled() {
    let db = dense_db(10);
    let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    let expected = triangles.count().unwrap();
    let handle = triangles.execute_handle(QueryOptions::new().threads(2));
    let result = handle.join().unwrap();
    assert_eq!(result.count, expected);

    // The handle exposes its token: a watchdog can hold just the token.
    let handle = triangles.execute_handle(QueryOptions::new());
    let token = handle.token();
    let result = handle.join().unwrap();
    assert_eq!(result.count, expected);
    assert!(!token.is_cancelled(), "nobody cancelled this run");
}

/// Cancellation also unwinds runs that stream into sinks and runs whose plan contains a
/// hash join (the build side is interruptible too).
#[test]
fn cancellation_covers_sink_streaming_runs() {
    let db = dense_db(40);
    let clique = db.prepare(CLIQUE5).unwrap();
    let token = CancellationToken::new();
    let mut seen = 0u64;
    let result = {
        let mut sink = graphflow_core::CallbackSink::new(|_t: &[u32]| {
            seen += 1;
            if seen == 100 {
                token.cancel(); // cancel mid-stream, from inside the callback
            }
            true
        });
        clique.run_with_sink(QueryOptions::new().cancel_token(token.clone()), &mut sink)
    };
    assert!(matches!(result, Err(Error::Cancelled)), "{result:?}");
    assert!(
        (100..10_100).contains(&seen),
        "run must stop within a batch of the cancellation, saw {seen} matches"
    );
}
