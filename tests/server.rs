//! End-to-end tests for the HTTP front-end: a real `Server` on an ephemeral port, exercised
//! through the minimal blocking client in `graphflow_server::client`.
//!
//! The invariants under test:
//!
//! * **Epoch atomicity over the wire** — concurrent HTTP readers racing an HTTP writer must
//!   only ever observe fully-published epochs (the PR 5 invariant, now across the network):
//!   each `/txn` batch atomically toggles the triangle count between two known values, so a
//!   reader seeing anything else caught a torn write.
//! * **Streaming, not materialising** — a >100k-row result arrives as many bounded transfer
//!   chunks, each no larger than the configured stream buffer (plus one row of slack).
//! * **Admission control** — quota exhaustion and queue overflow answer `429` with
//!   `Retry-After` and a structured error body.
//! * **Disconnect cancels** — dropping the connection mid-stream cancels the server-side
//!   query, visible in `Metrics::queries_cancelled`.
//! * **Graceful shutdown** — `shutdown()` with a query in flight cancels it, drains the
//!   workers, and leaves the database consistent.

use graphflow_rs::graph::GraphBuilder;
use graphflow_rs::server::client::{open_stream, request};
use graphflow_rs::{GraphflowDB, Server, ServerConfig, TenantConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TRIANGLE: &str = "(a)->(b), (b)->(c), (a)->(c)";

fn start_server(db: GraphflowDB, config: ServerConfig) -> (Server, SocketAddr, GraphflowDB) {
    let handle = db.clone();
    let server = Server::start(db, config).expect("bind ephemeral port");
    let addr = server.local_addr();
    (server, addr, handle)
}

/// POST /query and return (status, body text).
fn post_query(addr: SocketAddr, body: &str, headers: &[(&str, &str)]) -> (u16, String) {
    let resp = request(addr, "POST", "/query", headers, body.as_bytes()).expect("http");
    (resp.status, resp.text())
}

/// Pull `"row_count":N` out of a /query response body.
fn row_count(body: &str) -> u64 {
    let json = graphflow_rs::core::json::Json::parse(body).expect("response is JSON");
    json.get("row_count")
        .and_then(|j| j.as_i64())
        .unwrap_or_else(|| panic!("no row_count in {body}")) as u64
}

/// A complete DAG on `n` vertices (`i -> j` for all `i < j`): the open-wedge query
/// `(a)->(b), (b)->(c)` has exactly `C(n, 3)` matches — an easy >100k-row result.
fn complete_dag(n: u32) -> GraphflowDB {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j);
        }
    }
    GraphflowDB::from_graph(b.build())
}

#[test]
fn healthz_query_and_structured_errors() {
    let mut b = GraphBuilder::new();
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 2);
    let (server, addr, _db) =
        start_server(GraphflowDB::from_graph(b.build()), ServerConfig::default());

    let health = request(addr, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    // A count over the wire matches the in-process engine, and carries the epoch header.
    let resp = request(
        addr,
        "POST",
        "/query",
        &[],
        format!("{{\"query\":\"{TRIANGLE} RETURN COUNT(*)\"}}").as_bytes(),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.text().contains("\"rows\":[[1]]"),
        "body: {}",
        resp.text()
    );
    assert_eq!(resp.header("x-graphflow-epoch"), Some("0"));

    // EXPLAIN routes through the same verb dispatch as the embedded API.
    let (status, body) = post_query(addr, &format!("{{\"query\":\"EXPLAIN {TRIANGLE}\"}}"), &[]);
    assert_eq!(status, 200);
    assert!(body.contains("plan class"), "EXPLAIN body: {body}");

    // Malformed pattern: 400 with a structured, actionable error chain.
    let (status, body) = post_query(addr, "{\"query\":\"(a-<\"}", &[]);
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"parse_error\""), "body: {body}");
    assert!(body.contains("\"chain\""), "body: {body}");

    // Malformed JSON body: 400 before the engine is ever involved.
    let (status, body) = post_query(addr, "{not json", &[]);
    assert_eq!(status, 400);
    assert!(body.contains("invalid_json"), "body: {body}");

    // Unknown path and wrong method.
    assert_eq!(request(addr, "GET", "/nope", &[], b"").unwrap().status, 404);
    assert_eq!(
        request(addr, "GET", "/query", &[], b"").unwrap().status,
        405
    );

    server.shutdown().unwrap();
}

/// The PR 5 epoch invariant, over the wire: 7 HTTP readers race 1 HTTP writer whose `/txn`
/// batches atomically toggle the graph between 0 and 2 triangles. Every response must report
/// a count of 0 or 2 — a 1 means a reader pinned a half-applied batch.
#[test]
fn concurrent_clients_see_atomic_epochs() {
    let mut b = GraphBuilder::new();
    // Two open wedges; the toggled edges 0->2 and 3->5 close both triangles at once.
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(3, 4);
    b.add_edge(4, 5);
    let config = ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    };
    let (server, addr, _db) = start_server(GraphflowDB::from_graph(b.build()), config);

    let stop = Arc::new(AtomicBool::new(false));
    let writer = std::thread::spawn({
        let stop = stop.clone();
        move || {
            let insert = "{\"updates\":[{\"op\":\"insert_edge\",\"src\":0,\"dst\":2},\
                          {\"op\":\"insert_edge\",\"src\":3,\"dst\":5}]}";
            let delete = "{\"updates\":[{\"op\":\"delete_edge\",\"src\":0,\"dst\":2},\
                          {\"op\":\"delete_edge\",\"src\":3,\"dst\":5}]}";
            let mut txns = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let body = if txns.is_multiple_of(2) {
                    insert
                } else {
                    delete
                };
                let resp = request(addr, "POST", "/txn", &[], body.as_bytes()).expect("txn");
                assert_eq!(resp.status, 200, "txn failed: {}", resp.text());
                assert!(resp.text().contains("\"applied\":2"));
                txns += 1;
            }
            // Leave the triangles closed so the final comparison below is deterministic:
            // the next toggle in sequence would be an insert iff `txns` is even.
            if txns.is_multiple_of(2) {
                request(addr, "POST", "/txn", &[], insert.as_bytes()).expect("txn");
            }
            txns
        }
    });

    let readers: Vec<_> = (0..7)
        .map(|r| {
            std::thread::spawn({
                let stop = stop.clone();
                move || {
                    let body = format!("{{\"query\":\"{TRIANGLE} RETURN COUNT(*)\"}}");
                    let tenant = format!("reader-{r}");
                    let mut last_epoch = 0u64;
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let resp = request(
                            addr,
                            "POST",
                            "/query",
                            &[("X-Graphflow-Tenant", tenant.as_str())],
                            body.as_bytes(),
                        )
                        .expect("query");
                        assert_eq!(resp.status, 200, "reader got: {}", resp.text());
                        let text = resp.text();
                        let count = text
                            .split("\"rows\":[[")
                            .nth(1)
                            .and_then(|t| t.split(']').next())
                            .and_then(|t| t.parse::<u64>().ok())
                            .unwrap_or_else(|| panic!("bad body: {text}"));
                        assert!(
                            count == 0 || count == 2,
                            "torn epoch over the wire: saw {count} triangles"
                        );
                        let epoch: u64 = resp
                            .header("x-graphflow-epoch")
                            .and_then(|e| e.parse().ok())
                            .expect("epoch header");
                        assert!(epoch >= last_epoch, "epoch went backwards");
                        last_epoch = epoch;
                        seen += 1;
                    }
                    seen
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(1200));
    stop.store(true, Ordering::Relaxed);
    let txns = writer.join().unwrap();
    let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(txns > 4, "writer barely ran ({txns} txns)");
    assert!(reads > 20, "readers barely ran ({reads} reads)");

    // Quiesced: the wire answer equals the in-process engine's answer.
    let (status, body) = post_query(
        addr,
        &format!("{{\"query\":\"{TRIANGLE} RETURN COUNT(*)\"}}"),
        &[],
    );
    assert_eq!(status, 200);
    let wire = row_count(&body);
    assert_eq!(wire, 1, "one row for a COUNT(*)");
    assert!(body.contains("\"rows\":[[2]]"), "final graph: {body}");
    assert_eq!(server.db().count(TRIANGLE).unwrap(), 2);

    server.shutdown().unwrap();
}

/// A 161,700-row projection streams through bounded chunks: memory per request is
/// O(stream_buffer), never O(result). The chunk sizes prove no materialisation happened.
#[test]
fn large_results_stream_in_bounded_chunks() {
    let stream_buffer = 16 * 1024;
    let config = ServerConfig {
        stream_buffer,
        ..ServerConfig::default()
    };
    // C(100, 3) = 161,700 open wedges.
    let (server, addr, _db) = start_server(complete_dag(100), config);

    let mut resp = open_stream(
        addr,
        "POST",
        "/query",
        &[],
        b"{\"query\":\"(a)->(b), (b)->(c) RETURN a, b, c\",\"stream\":true}",
    )
    .expect("open stream");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/x-ndjson"));

    let mut bytes = 0usize;
    let mut chunks = 0usize;
    let mut max_chunk = 0usize;
    let mut tail = String::new();
    while let Some(chunk) = resp.next_chunk().expect("chunk") {
        bytes += chunk.len();
        chunks += 1;
        max_chunk = max_chunk.max(chunk.len());
        tail = String::from_utf8_lossy(&chunk).into_owned();
    }
    // Every chunk is bounded by the flush threshold plus at most one encoded row.
    assert!(
        max_chunk <= stream_buffer + 64,
        "chunk of {max_chunk} bytes escaped the {stream_buffer}-byte buffer"
    );
    assert!(chunks > 50, "{bytes} bytes arrived in only {chunks} chunks");
    assert!(
        tail.contains("\"row_count\":161700"),
        "stream trailer: {tail}"
    );

    server.shutdown().unwrap();
}

#[test]
fn quota_exhaustion_answers_429_with_retry_after() {
    let mut b = GraphBuilder::new();
    b.add_edge(0, 1);
    let config = ServerConfig {
        tenant: TenantConfig {
            query_quota: Some(2),
            ..TenantConfig::default()
        },
        ..ServerConfig::default()
    };
    let (server, addr, _db) = start_server(GraphflowDB::from_graph(b.build()), config);

    let body = "{\"query\":\"(a)->(b) RETURN COUNT(*)\"}";
    let tenant = [("Authorization", "Bearer capped")];
    for _ in 0..2 {
        let (status, _) = post_query(addr, body, &tenant);
        assert_eq!(status, 200);
    }
    let resp = request(addr, "POST", "/query", &tenant, body.as_bytes()).unwrap();
    assert_eq!(resp.status, 429, "third query must hit the quota");
    assert!(
        resp.header("retry-after").is_some(),
        "429 without Retry-After"
    );
    assert!(
        resp.text().contains("query_quota_exhausted"),
        "body: {}",
        resp.text()
    );

    // Other tenants are unaffected: quotas are per-session, not global.
    let (status, _) = post_query(addr, body, &[("Authorization", "Bearer other")]);
    assert_eq!(status, 200);

    // Per-tenant rejection counters surface on /metrics with tenant labels.
    let metrics = request(addr, "GET", "/metrics", &[], b"").unwrap().text();
    assert!(
        metrics.contains("graphflow_tenant_rejected_total{tenant=\"capped\"} 1"),
        "metrics: {}",
        metrics
            .lines()
            .filter(|l| l.contains("tenant"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    server.shutdown().unwrap();
}

#[test]
fn queue_overflow_answers_429() {
    // One slot, no queue, and an admission timeout too short to matter: the second
    // concurrent query must bounce.
    let config = ServerConfig {
        tenant: TenantConfig {
            max_inflight: 1,
            queue_cap: 0,
            admission_timeout: Duration::from_millis(50),
            ..TenantConfig::default()
        },
        ..ServerConfig::default()
    };
    let (server, addr, _db) = start_server(complete_dag(80), config);

    // Occupy the only slot with a slow streaming query read one chunk at a time.
    let mut hog = open_stream(
        addr,
        "POST",
        "/query",
        &[],
        b"{\"query\":\"(a)->(b), (b)->(c) RETURN a, b, c\",\"stream\":true}",
    )
    .expect("open stream");
    assert_eq!(hog.status, 200);
    let _ = hog.next_chunk().expect("first chunk");

    // While it streams, a second query from the same (default) tenant is rejected.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut status = 0;
    while Instant::now() < deadline {
        let (s, _) = post_query(addr, "{\"query\":\"(a)->(b) RETURN COUNT(*)\"}", &[]);
        status = s;
        if s == 429 {
            break;
        }
    }
    assert_eq!(status, 429, "queue overflow never produced a 429");

    let (bytes, _) = hog.drain().expect("drain");
    assert!(bytes > 0);
    server.shutdown().unwrap();
}

/// Dropping the connection mid-stream cancels the server-side query: the cancellation is
/// *counted* (`queries_cancelled`), not just silently stopped.
#[test]
fn client_disconnect_cancels_the_query() {
    let config = ServerConfig {
        stream_buffer: 4 * 1024,
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    // C(150, 3) = 551,300 rows — far more than the client will read.
    let (server, addr, db) = start_server(complete_dag(150), config);
    let cancelled_before = db.metrics().queries_cancelled;

    let mut resp = open_stream(
        addr,
        "POST",
        "/query",
        &[],
        b"{\"query\":\"(a)->(b), (b)->(c) RETURN a, b, c\",\"stream\":true}",
    )
    .expect("open stream");
    assert_eq!(resp.status, 200);
    let _ = resp.next_chunk().expect("first chunk");
    // Hang up mid-body: the server's next writes hit a closed socket.
    drop(resp);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if db.metrics().queries_cancelled > cancelled_before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the query: {:?}",
            db.metrics()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The server itself stays healthy for the next client.
    let (status, _) = post_query(addr, "{\"query\":\"(a)->(b) RETURN COUNT(*)\"}", &[]);
    assert_eq!(status, 200);

    server.shutdown().unwrap();
}

/// Graceful shutdown with a query in flight: the in-flight stream is cancelled via its
/// token, workers drain, and the database handle stays usable afterwards.
#[test]
fn graceful_shutdown_cancels_inflight_queries() {
    let config = ServerConfig {
        stream_buffer: 4 * 1024,
        ..ServerConfig::default()
    };
    let (server, addr, db) = start_server(complete_dag(150), config);
    let cancelled_before = db.metrics().queries_cancelled;

    // Park a client mid-stream (it reads one chunk then sleeps) so a query is running when
    // shutdown begins.
    let client = std::thread::spawn(move || {
        let mut resp = open_stream(
            addr,
            "POST",
            "/query",
            &[],
            b"{\"query\":\"(a)->(b), (b)->(c) RETURN a, b, c\",\"stream\":true}",
        )
        .expect("open stream");
        let _ = resp.next_chunk();
        // Keep draining; the server will terminate the stream when shutdown cancels us.
        let mut bytes = 0usize;
        while let Ok(Some(chunk)) = resp.next_chunk() {
            bytes += chunk.len();
        }
        bytes
    });
    // Let the query start before shutting down.
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.metrics().queries_started == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    server.shutdown().expect("graceful shutdown");
    let _bytes = client.join().expect("client thread");

    let metrics = db.metrics();
    assert!(
        metrics.queries_cancelled > cancelled_before,
        "in-flight query was not cancelled: {metrics:?}"
    );
    // The database outlives the server: embedded use keeps working.
    assert!(db.count("(a)->(b)").unwrap() > 0);
}

/// `ResultSet::to_json` and the NDJSON trailer agree on row counts for non-streamable
/// (aggregate) queries — those take the materialising path even when streaming is requested.
#[test]
fn aggregates_fall_back_to_materialised_responses() {
    let (server, addr, _db) = start_server(complete_dag(20), ServerConfig::default());

    // GROUP BY-style aggregate: streaming requested but not streamable.
    let resp = request(
        addr,
        "POST",
        "/query",
        &[],
        b"{\"query\":\"(a)->(b) RETURN a, COUNT(*)\",\"stream\":true}",
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("application/json"),
        "aggregates must not pretend to stream"
    );
    assert_eq!(row_count(&resp.text()), 19, "one group per source vertex");

    server.shutdown().unwrap();
}

/// Top-level wire options reach `QueryOptions`: `timeout_ms` produces a 408 (counted in
/// `queries_timed_out`), `limit` caps rows, and contradictory options answer 400.
#[test]
fn wire_options_map_onto_query_options() {
    // C(150, 3) = 551,300 wedges: far past a 1ms budget on any build profile.
    let (server, addr, db) = start_server(complete_dag(150), ServerConfig::default());

    let resp = request(
        addr,
        "POST",
        "/query",
        &[],
        b"{\"query\":\"(a)->(b), (b)->(c) RETURN a, b, c\",\"timeout_ms\":1}",
    )
    .unwrap();
    assert_eq!(resp.status, 408, "body: {}", resp.text());
    assert!(
        resp.text().contains("\"code\":\"timeout\""),
        "{}",
        resp.text()
    );
    assert_eq!(db.metrics().queries_timed_out, 1);

    let resp = request(
        addr,
        "POST",
        "/query",
        &[],
        b"{\"query\":\"(a)->(b) RETURN a, b\",\"limit\":5}",
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(row_count(&resp.text()), 5, "body: {}", resp.text());

    // adaptive + threads is the canonical InvalidOptions pair.
    let resp = request(
        addr,
        "POST",
        "/query",
        &[],
        b"{\"query\":\"(a)->(b) RETURN COUNT(*)\",\"adaptive\":true,\"threads\":4}",
    )
    .unwrap();
    assert_eq!(resp.status, 400, "body: {}", resp.text());
    assert!(
        resp.text().contains("\"code\":\"invalid_options\""),
        "{}",
        resp.text()
    );

    server.shutdown().unwrap();
}
