//! Offline stand-in for the `rustc-hash` crate.
//!
//! Provides `FxHashMap`/`FxHashSet`: `std` collections parameterised with a fast, non-keyed
//! multiply-rotate hasher in the style of the rustc "Fx" hash. Not DoS-resistant — exactly like
//! the real crate — and meant for hashing small keys (integers, short vectors of integers).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast multiply-rotate hasher for small keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 42);
        m.insert(vec![4], 7);
        assert_eq!(m.get(&vec![1, 2, 3]), Some(&42));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn equal_keys_hash_equal() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = bh.hash_one(vec![9u32, 8, 7]);
        let h2 = bh.hash_one(vec![9u32, 8, 7]);
        assert_eq!(h1, h2);
    }
}
