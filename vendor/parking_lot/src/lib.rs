//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API: `lock()` returns the
//! guard directly (a poisoned std lock is recovered rather than propagated, matching
//! `parking_lot`'s behaviour of not poisoning at all).

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
