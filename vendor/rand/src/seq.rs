//! Slice sampling helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

/// In-place slice shuffling (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u32].choose(&mut rng), Some(&42));
    }
}
