//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate provides exactly
//! the API surface the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over integer ranges, and `seq::SliceRandom::shuffle` — backed
//! by a xoshiro256++ generator seeded through SplitMix64. It is deterministic for a given
//! seed, which is all the workspace's generators, samplers and tests rely on.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value API (subset of `rand::Rng`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive integer range.
    ///
    /// Panics when the range is empty, mirroring `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a uniform integer can be drawn from (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
