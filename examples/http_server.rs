//! Serving a database over HTTP — the network front-end, in-process.
//!
//! `graphflow-server` wraps any `GraphflowDB` handle in a hand-rolled HTTP/1.1 server (the
//! workspace carries no network dependency): `POST /query` runs queries — including
//! `EXPLAIN`/`PROFILE`, and NDJSON streaming over chunked transfer encoding for large
//! results — `POST /txn` applies atomic write batches, `GET /metrics` exposes Prometheus
//! counters with per-tenant labels, and shutdown is graceful: in-flight queries are
//! cancelled through their tokens and the WAL is flushed.
//!
//! This example boots a server on an ephemeral port, talks to it through the crate's
//! minimal blocking client (the same calls `curl` would make), and shuts it down. The
//! standalone equivalent is the `graphflow-serve` binary.
//!
//! Run with `cargo run --release --example http_server`.

use graphflow_rs::graph::GraphBuilder;
use graphflow_rs::server::client::{open_stream, request};
use graphflow_rs::{GraphflowDB, Server, ServerConfig, TenantConfig};

fn main() {
    // A ring with chords: plenty of wedges and triangles to query.
    let n = 200u32;
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
        b.add_edge(i, (i + 2) % n);
    }
    let db = GraphflowDB::from_graph(b.build());

    let server = Server::start(
        db,
        ServerConfig {
            workers: 4,
            tenant: TenantConfig {
                max_inflight: 4,
                ..TenantConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    println!("serving on http://{addr}");

    // Liveness.
    let health = request(addr, "GET", "/healthz", &[], b"").unwrap();
    println!("GET /healthz        -> {} {}", health.status, health.text());

    // A counting query, as tenant "demo" (the header keys the session and its quotas).
    let resp = request(
        addr,
        "POST",
        "/query",
        &[("Authorization", "Bearer demo")],
        b"{\"query\":\"(a)->(b), (b)->(c), (a)->(c) RETURN COUNT(*)\"}",
    )
    .unwrap();
    println!("POST /query (count) -> {} {}", resp.status, resp.text());

    // A large projection, streamed: rows arrive as NDJSON transfer chunks, so server memory
    // stays bounded no matter the result size.
    let mut stream = open_stream(
        addr,
        "POST",
        "/query",
        &[("Authorization", "Bearer demo")],
        b"{\"query\":\"(a)->(b), (b)->(c) RETURN a, b, c\",\"stream\":true}",
    )
    .unwrap();
    let (bytes, chunks) = stream.drain().unwrap();
    println!("POST /query (stream) -> {} bytes in {chunks} chunks", bytes);

    // A write batch: one atomic epoch publication, same as `apply_batch` in-process.
    let resp = request(
        addr,
        "POST",
        "/txn",
        &[],
        b"{\"updates\":[{\"op\":\"insert_edge\",\"src\":0,\"dst\":100}]}",
    )
    .unwrap();
    println!("POST /txn           -> {} {}", resp.status, resp.text());

    // Prometheus exposition, including the per-tenant series.
    let metrics = request(addr, "GET", "/metrics", &[], b"").unwrap().text();
    for line in metrics.lines().filter(|l| {
        l.starts_with("graphflow_tenant_queries_total") || l.starts_with("graphflow_server_")
    }) {
        println!("GET /metrics        -> {line}");
    }

    server.shutdown().expect("graceful shutdown");
    println!("shut down cleanly");
}
