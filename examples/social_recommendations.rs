//! Diamond-motif search in a follower network, comparing plan classes and execution modes.
//!
//! The paper's opening example: "Twitter searches for diamonds in their follower network for
//! recommendations". This example runs the diamond-X recommendation motif on a synthetic
//! Twitter-like follower graph and shows how the pieces of the system fit together:
//!
//! 1. the cost-based optimizer picks different plans when the plan space is restricted to
//!    WCO-only, BJ-only or the full hybrid space;
//! 2. adaptive query-vertex-ordering evaluation and multi-threaded execution return the same
//!    answer with different performance profiles;
//! 3. the naive binary-join baseline (a Neo4j-style engine) shows why worst-case optimal
//!    intersections matter on cyclic motifs.
//!
//! ```bash
//! cargo run --release --example social_recommendations
//! ```

use graphflow_baselines::{bj_engine_count, BjEngineOptions};
use graphflow_core::{CallbackSink, GraphflowDB, QueryOptions};
use graphflow_datasets::twitter;
use graphflow_plan::dp::PlanSpaceOptions;
use graphflow_query::patterns;
use std::time::Instant;

fn main() {
    // A scaled-down Twitter-like follower graph (heavy-tailed in-degrees, low clustering).
    let graph = twitter(0.4);
    println!(
        "follower graph: {} users, {} follow edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let db = GraphflowDB::with_config(graph.clone(), Default::default());
    let diamond = patterns::diamond_x();

    // --- 1. What does the optimizer pick in each plan space? -------------------------------
    for (name, space) in [
        ("hybrid (full plan space)", PlanSpaceOptions::default()),
        ("WCO-only", PlanSpaceOptions::wco_only()),
    ] {
        db.set_plan_space(space);
        let plan = db.plan(&diamond).unwrap();
        println!(
            "\n[{name}] chose a {} plan with estimated cost {:.0}:\n{}",
            plan.class(),
            plan.estimated_cost,
            plan.explain()
        );
    }
    db.set_plan_space(PlanSpaceOptions::default());

    // --- 2. Execution modes agree on the answer --------------------------------------------
    // Prepare the motif once; the three runs below share the cached plan.
    let prepared = db.prepare_query(diamond.clone()).unwrap();
    let fixed = prepared.run(QueryOptions::default()).unwrap();
    let adaptive = prepared.run(QueryOptions::new().adaptive(true)).unwrap();
    let parallel = prepared.run(QueryOptions::new().threads(8)).unwrap();
    println!("\ndiamond-X recommendations found : {}", fixed.count);
    println!(
        "  fixed plan    : {:>8.1?}  (i-cost {}, cache hit rate {:.2})",
        fixed.stats.elapsed,
        fixed.stats.icost,
        fixed.stats.cache_hit_rate()
    );
    println!(
        "  adaptive QVOs : {:>8.1?}  (i-cost {})",
        adaptive.stats.elapsed, adaptive.stats.icost
    );
    println!("  8 threads     : {:>8.1?}", parallel.stats.elapsed);
    assert_eq!(fixed.count, adaptive.count);
    assert_eq!(fixed.count, parallel.count);

    // --- 3. Against a binary-join-only engine ------------------------------------------------
    let start = Instant::now();
    let bj = bj_engine_count(&graph, &diamond, BjEngineOptions::default());
    println!(
        "  naive BJ engine: {:>8.1?}  ({:?})",
        start.elapsed(),
        bj.count()
            .map(|c| format!("{c} matches"))
            .unwrap_or_else(|| "aborted: intermediate blow-up".to_string())
    );

    // --- 4. Top hub users appearing in the most diamonds -------------------------------------
    // Aggregate over *every* diamond by streaming matches through a sink: nothing is
    // materialised, so this scales to result sets far beyond memory.
    let mut freq = std::collections::HashMap::new();
    let streamed = {
        let mut sink = CallbackSink::new(|t: &[u32]| {
            *freq.entry(t[0]).or_insert(0u64) += 1;
            true
        });
        prepared
            .run_with_sink(QueryOptions::new(), &mut sink)
            .unwrap();
        sink.matches
    };
    let mut top: Vec<(u32, u64)> = freq.into_iter().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nusers anchoring the most recommendation diamonds (streamed over all {streamed} matches):");
    for (user, count) in top.into_iter().take(5) {
        println!("  user {user:>6}: {count} diamonds");
    }
}
