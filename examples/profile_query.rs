//! Profile a query end to end: EXPLAIN the chosen plan, PROFILE a run to see per-operator
//! actuals, inspect the typed profile tree and its JSON form, then read the db-wide metrics
//! registry and the slow-query log.
//!
//! ```bash
//! cargo run --release --example profile_query
//! ```

use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{GraphBuilder, PropValue};
use std::time::Duration;

const DIAMOND_X: &str = "(a)->(b), (a)->(c), (b)->(c), (b)->(d), (c)->(d)";

fn main() {
    // A synthetic social graph with enough structure for the optimizer to have choices.
    let edges = graphflow_graph::generator::powerlaw_cluster(2_000, 6, 0.4, 11);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    let db = GraphflowDB::builder(b.build())
        // Queries at or above this latency land in the slow-query ring buffer.
        .slow_query_threshold(Duration::from_micros(50))
        .build();

    // 1. EXPLAIN: the chosen plan with the catalogue's estimated cardinalities and costs.
    //    No execution happens — the stats columns stay empty.
    println!("== EXPLAIN ==");
    let explained = db.query(&format!("EXPLAIN {DIAMOND_X}")).unwrap();
    for row in explained.rows() {
        if let Some(PropValue::Str(line)) = &row[0] {
            println!("{line}");
        }
    }

    // 2. PROFILE: execute with per-operator counters and annotate the same tree with actual
    //    rows, i-cost and self time.
    println!("\n== PROFILE ==");
    let profiled = db.query(&format!("PROFILE {DIAMOND_X}")).unwrap();
    for row in profiled.rows() {
        if let Some(PropValue::Str(line)) = &row[0] {
            println!("{line}");
        }
    }

    // 3. The typed surface: a prepared query exposes the same tree as a structure, plus a
    //    machine-readable JSON rendering for dashboards.
    let prepared = db.prepare(DIAMOND_X).unwrap();
    let profile = prepared.profile(QueryOptions::new()).unwrap();
    let stats = profile.stats.as_ref().unwrap();
    println!("\n== typed profile ==");
    println!("plan class          : {}", profile.plan_class);
    println!("operators           : {}", profile.root.num_operators());
    println!("actual i-cost       : {}", stats.icost);
    println!("intermediate tuples : {}", stats.intermediate_tuples);
    println!("output tuples       : {}", stats.output_count);
    println!("json bytes          : {}", profile.to_json().len());

    // 4. The db-wide metrics registry: query/txn/storage counters plus a latency histogram,
    //    rendered in Prometheus text exposition format.
    let mut txn = db.begin_write();
    txn.insert_edge(0, 1_999, graphflow_graph::EdgeLabel(0));
    txn.commit();
    println!("\n== metrics ==");
    let metrics = db.metrics();
    println!(
        "queries started/completed : {}/{}",
        metrics.queries_started, metrics.queries_completed
    );
    println!(
        "p50/p95 latency           : {:?}/{:?}",
        metrics.query_latency.p50(),
        metrics.query_latency.p95()
    );
    println!("txn commits               : {}", metrics.txn_commits);
    println!("\n{}", metrics.render());

    // 5. The slow-query log: every query at or above the configured threshold, with its
    //    latency, actual i-cost and plan fingerprint.
    println!("== slow queries ==");
    for slow in db.slow_queries() {
        println!(
            "{:?}  icost={}  plan={}  {}",
            slow.latency, slow.icost, slow.plan_id, slow.query
        );
    }
}
