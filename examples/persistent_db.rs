//! Durable storage — open a database directory, survive a restart, recover from the WAL.
//!
//! A small social graph is created on disk, mutated across several write transactions, then
//! dropped and reopened: the snapshot plus write-ahead log reconstruct exactly the published
//! state, including a batch that was never checkpointed.
//!
//! ```bash
//! cargo run --release --example persistent_db
//! ```

use graphflow_core::{Durability, GraphflowDB};
use graphflow_graph::{EdgeLabel, GraphView as _, PropValue};

fn main() {
    let dir = std::env::temp_dir().join(format!("graphflow_persistent_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: create the directory, load a seed graph, checkpoint it into a snapshot.
    {
        let db = GraphflowDB::open(&dir).expect("creating database directory");
        let mut txn = db.begin_write();
        for i in 0..100u32 {
            txn.insert_edge(i, (i + 1) % 100, EdgeLabel(0));
            if i % 10 == 0 {
                // i -> i+1 -> i+2 plus this shortcut closes a directed triangle.
                txn.insert_edge(i, (i + 2) % 100, EdgeLabel(0));
                txn.insert_edge(i, (i + 5) % 100, EdgeLabel(1));
            }
            txn.set_vertex_prop(i, "score", PropValue::Int(i as i64))
                .expect("fresh column accepts Int");
        }
        let version = txn.commit();
        println!("seeded ring graph at epoch {version}");
        db.checkpoint().expect("writing snapshot");

        // Post-snapshot commits live only in the WAL until the next checkpoint.
        let mut txn = db.begin_write();
        txn.insert_edge(0, 50, EdgeLabel(0));
        txn.insert_edge(50, 0, EdgeLabel(0));
        txn.set_edge_prop(0, 50, EdgeLabel(0), "weight", PropValue::Float(0.9))
            .expect("fresh column accepts Float");
        let version = txn.commit();
        println!("un-checkpointed batch committed at epoch {version}");
    } // drop = process exit as far as the files are concerned

    // Second life: recovery loads the snapshot and replays the WAL past it.
    let db = GraphflowDB::open(&dir).expect("reopening database directory");
    let triangles = db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    let weighted = db
        .query("(a)-[e]->(b) RETURN COUNT(*), MAX(e.weight)")
        .unwrap();
    println!(
        "recovered epoch {}: {} edges, {triangles} triangles, heaviest transfer {:?}",
        db.graph_version(),
        db.graph().num_edges() + db.snapshot().delta().overlay_edges(),
        weighted.rows()[0][1],
    );
    assert!(
        db.snapshot().has_edge(0, 50, EdgeLabel(0)),
        "WAL replay restored the tail batch"
    );
    assert!(db.snapshot().has_edge(50, 0, EdgeLabel(0)));

    // Durability levels trade safety for speed; `None` still survives a clean shutdown.
    let db2 = GraphflowDB::builder(graphflow_graph::GraphBuilder::new().build())
        .data_dir(dir.join("bulk"))
        .durability(Durability::None)
        .open()
        .expect("opening bulk-load directory");
    for i in 0..1000u32 {
        db2.insert_edge(i, i + 1, EdgeLabel(0));
    }
    db2.sync().expect("flushing buffered WAL frames");
    println!("bulk-loaded 1000 edges under Durability::None, synced once");

    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
}
