//! Fraud-ring detection in a transaction network.
//!
//! The paper motivates subgraph queries with fraud detection: "cyclic patterns in transaction
//! networks indicate fraudulent activity". This example builds a synthetic payment network with
//! labelled edges (label 0 = ordinary payment, label 1 = flagged high-value transfer), plants a
//! few laundering rings, and uses the optimizer to hunt for two classic fraud shapes:
//!
//! * money cycles of flagged transfers (`a -> b -> c -> a` style rings of length 3 and 4);
//! * "smurfing" diamonds, where funds fan out from one account and re-converge on another.
//!
//! ```bash
//! cargo run --release --example fraud_rings
//! ```

use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{EdgeLabel, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let accounts: u32 = 3000;
    let mut b = GraphBuilder::new();

    // Background traffic: random ordinary payments.
    for _ in 0..accounts * 6 {
        let s = rng.gen_range(0..accounts);
        let d = rng.gen_range(0..accounts);
        if s != d {
            b.add_labelled_edge(s, d, EdgeLabel(0));
        }
    }
    // A sprinkle of flagged transfers between random accounts (noise for the detector).
    for _ in 0..accounts {
        let s = rng.gen_range(0..accounts);
        let d = rng.gen_range(0..accounts);
        if s != d {
            b.add_labelled_edge(s, d, EdgeLabel(1));
        }
    }
    // Planted laundering rings of flagged transfers.
    let planted_rings_len3 = 5;
    let planted_rings_len4 = 4;
    let mut ring_accounts = accounts;
    for _ in 0..planted_rings_len3 {
        let (x, y, z) = (ring_accounts, ring_accounts + 1, ring_accounts + 2);
        ring_accounts += 3;
        b.add_labelled_edge(x, y, EdgeLabel(1));
        b.add_labelled_edge(y, z, EdgeLabel(1));
        b.add_labelled_edge(z, x, EdgeLabel(1));
    }
    for _ in 0..planted_rings_len4 {
        let (w, x, y, z) = (
            ring_accounts,
            ring_accounts + 1,
            ring_accounts + 2,
            ring_accounts + 3,
        );
        ring_accounts += 4;
        b.add_labelled_edge(w, x, EdgeLabel(1));
        b.add_labelled_edge(x, y, EdgeLabel(1));
        b.add_labelled_edge(y, z, EdgeLabel(1));
        b.add_labelled_edge(z, w, EdgeLabel(1));
    }
    // Planted smurfing diamonds: one source fans out to two mules that pay the same recipient.
    let planted_diamonds = 6;
    for _ in 0..planted_diamonds {
        let (src, m1, m2, dst) = (
            ring_accounts,
            ring_accounts + 1,
            ring_accounts + 2,
            ring_accounts + 3,
        );
        ring_accounts += 4;
        b.add_labelled_edge(src, m1, EdgeLabel(1));
        b.add_labelled_edge(src, m2, EdgeLabel(1));
        b.add_labelled_edge(m1, dst, EdgeLabel(1));
        b.add_labelled_edge(m2, dst, EdgeLabel(1));
    }

    let db = GraphflowDB::from_graph(b.build());
    println!(
        "transaction network: {} accounts, {} payments\n",
        db.graph().num_vertices(),
        db.graph().num_edges()
    );

    // Directed 3-cycles of flagged transfers. Every planted ring contributes 3 rotations.
    let ring3 = "(a)-[1]->(b), (b)-[1]->(c), (c)-[1]->(a)";
    let r3 = db.run(ring3, QueryOptions::default()).unwrap();
    println!(
        "flagged 3-cycles  : {:>6}   (planted rings: {}, each counted once per rotation)",
        r3.count, planted_rings_len3
    );
    assert!(r3.count >= (planted_rings_len3 * 3) as u64);

    // Directed 4-cycles of flagged transfers.
    let ring4 = "(a)-[1]->(b), (b)-[1]->(c), (c)-[1]->(d), (d)-[1]->(a)";
    let r4 = db.run(ring4, QueryOptions::default()).unwrap();
    println!(
        "flagged 4-cycles  : {:>6}   (planted rings: {}, each counted once per rotation)",
        r4.count, planted_rings_len4
    );
    assert!(r4.count >= (planted_rings_len4 * 4) as u64);

    // Smurfing diamonds over flagged transfers.
    let diamond = "(src)-[1]->(m1), (src)-[1]->(m2), (m1)-[1]->(dst), (m2)-[1]->(dst)";
    let d = db.run(diamond, QueryOptions::default()).unwrap();
    println!("smurfing diamonds : {:>6}   (planted: {planted_diamonds}, counted per mule ordering)", d.count);
    assert!(d.count >= (planted_diamonds * 2) as u64);

    // Show what the optimizer chose for the cyclic ring query: cyclic flagged patterns are the
    // sweet spot of WCO-style multiway intersections.
    println!("\nEXPLAIN {ring4}\n{}", db.explain(ring4).unwrap());
    println!(
        "runtime: {:?}, actual i-cost {}, intermediate matches {}",
        r4.stats.elapsed, r4.stats.icost, r4.stats.intermediate_tuples
    );
}
