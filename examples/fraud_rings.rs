//! Fraud-ring detection in a transaction network.
//!
//! The paper motivates subgraph queries with fraud detection: "cyclic patterns in transaction
//! networks indicate fraudulent activity". This example builds a synthetic payment network with
//! labelled edges (label 0 = ordinary payment, label 1 = flagged high-value transfer), plants a
//! few laundering rings, and uses the optimizer to hunt for two classic fraud shapes:
//!
//! * money cycles of flagged transfers (`a -> b -> c -> a` style rings of length 3 and 4);
//! * "smurfing" diamonds, where funds fan out from one account and re-converge on another.
//!
//! ```bash
//! cargo run --release --example fraud_rings
//! ```

use graphflow_core::{CallbackSink, GraphflowDB, QueryOptions};
use graphflow_graph::{EdgeLabel, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let accounts: u32 = 3000;
    let mut b = GraphBuilder::new();

    // Background traffic: random ordinary payments.
    for _ in 0..accounts * 6 {
        let s = rng.gen_range(0..accounts);
        let d = rng.gen_range(0..accounts);
        if s != d {
            b.add_labelled_edge(s, d, EdgeLabel(0));
        }
    }
    // A sprinkle of flagged transfers between random accounts (noise for the detector).
    for _ in 0..accounts {
        let s = rng.gen_range(0..accounts);
        let d = rng.gen_range(0..accounts);
        if s != d {
            b.add_labelled_edge(s, d, EdgeLabel(1));
        }
    }
    // Planted laundering rings of flagged transfers.
    let planted_rings_len3 = 5;
    let planted_rings_len4 = 4;
    let mut ring_accounts = accounts;
    for _ in 0..planted_rings_len3 {
        let (x, y, z) = (ring_accounts, ring_accounts + 1, ring_accounts + 2);
        ring_accounts += 3;
        b.add_labelled_edge(x, y, EdgeLabel(1));
        b.add_labelled_edge(y, z, EdgeLabel(1));
        b.add_labelled_edge(z, x, EdgeLabel(1));
    }
    for _ in 0..planted_rings_len4 {
        let (w, x, y, z) = (
            ring_accounts,
            ring_accounts + 1,
            ring_accounts + 2,
            ring_accounts + 3,
        );
        ring_accounts += 4;
        b.add_labelled_edge(w, x, EdgeLabel(1));
        b.add_labelled_edge(x, y, EdgeLabel(1));
        b.add_labelled_edge(y, z, EdgeLabel(1));
        b.add_labelled_edge(z, w, EdgeLabel(1));
    }
    // Planted smurfing diamonds: one source fans out to two mules that pay the same recipient.
    let planted_diamonds = 6;
    for _ in 0..planted_diamonds {
        let (src, m1, m2, dst) = (
            ring_accounts,
            ring_accounts + 1,
            ring_accounts + 2,
            ring_accounts + 3,
        );
        ring_accounts += 4;
        b.add_labelled_edge(src, m1, EdgeLabel(1));
        b.add_labelled_edge(src, m2, EdgeLabel(1));
        b.add_labelled_edge(m1, dst, EdgeLabel(1));
        b.add_labelled_edge(m2, dst, EdgeLabel(1));
    }

    let db = GraphflowDB::from_graph(b.build());
    println!(
        "transaction network: {} accounts, {} payments\n",
        db.graph().num_vertices(),
        db.graph().num_edges()
    );

    // A fraud detector runs the same handful of shapes over and over as transactions stream
    // in, so prepare each shape once — the optimizer runs here, and every later execution is
    // a plan-cache hit.
    let ring3 = db
        .prepare("(a)-[1]->(b), (b)-[1]->(c), (c)-[1]->(a)")
        .unwrap();
    let ring4 = db
        .prepare("(a)-[1]->(b), (b)-[1]->(c), (c)-[1]->(d), (d)-[1]->(a)")
        .unwrap();
    let diamond = db
        .prepare("(src)-[1]->(m1), (src)-[1]->(m2), (m1)-[1]->(dst), (m2)-[1]->(dst)")
        .unwrap();

    // Directed 3-cycles of flagged transfers. Every planted ring contributes 3 rotations.
    let r3 = ring3.run(QueryOptions::default()).unwrap();
    println!(
        "flagged 3-cycles  : {:>6}   (planted rings: {}, each counted once per rotation)",
        r3.count, planted_rings_len3
    );
    assert!(r3.count >= (planted_rings_len3 * 3) as u64);

    // Directed 4-cycles of flagged transfers.
    let r4 = ring4.run(QueryOptions::default()).unwrap();
    println!(
        "flagged 4-cycles  : {:>6}   (planted rings: {}, each counted once per rotation)",
        r4.count, planted_rings_len4
    );
    assert!(r4.count >= (planted_rings_len4 * 4) as u64);

    // Smurfing diamonds over flagged transfers, streamed through a sink: the alert path sees
    // each ring as it is found instead of waiting for a materialised result set.
    let mut alerts = 0u64;
    {
        let mut sink = CallbackSink::new(|t: &[u32]| {
            if alerts < 3 {
                println!(
                    "  ALERT smurfing ring: {} -> ({}, {}) -> {}",
                    t[0], t[1], t[2], t[3]
                );
            }
            alerts += 1;
            true
        });
        diamond
            .run_with_sink(QueryOptions::new(), &mut sink)
            .unwrap();
    }
    println!(
        "smurfing diamonds : {:>6}   (planted: {planted_diamonds}, counted per mule ordering)",
        alerts
    );
    assert!(alerts >= (planted_diamonds * 2) as u64);

    // Re-running a prepared shape skips the optimizer entirely, and so does preparing an
    // isomorphic rewriting of it (a differently-worded detector rule, say): the plan cache
    // recognises the shape.
    let rerun = ring4.run(QueryOptions::default()).unwrap();
    assert_eq!(rerun.count, r4.count);
    let reworded = db
        .prepare("(p)-[1]->(q), (q)-[1]->(r), (r)-[1]->(s), (s)-[1]->(p)")
        .unwrap();
    assert!(reworded.was_cached());
    let cache = db.plan_cache_stats();
    println!(
        "\nplan cache: {} hits / {} optimizer invocations for {} detector shapes",
        cache.hits, cache.misses, cache.entries
    );

    // Show what the optimizer chose for the cyclic ring query: cyclic flagged patterns are the
    // sweet spot of WCO-style multiway intersections.
    println!("\nEXPLAIN 4-cycle\n{}", ring4.explain());
    println!(
        "runtime: {:?}, actual i-cost {}, intermediate matches {}",
        r4.stats.elapsed, r4.stats.icost, r4.stats.intermediate_tuples
    );
}
