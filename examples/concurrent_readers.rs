//! Concurrent serving: one `GraphflowDB` handle shared across threads.
//!
//! A background writer commits batches of edges through `WriteTxn`s while several reader
//! threads stream matches of one owned `PreparedQuery` — each read pins a consistent snapshot
//! epoch, so writers never block readers and no reader ever observes half a transaction.
//!
//! Run with `cargo run --release --example concurrent_readers`.

use graphflow_core::{CallbackSink, GraphflowDB, QueryOptions};
use graphflow_graph::{EdgeLabel, GraphBuilder, GraphView as _, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const READERS: usize = 3;
const TRIANGLE_BATCHES: u32 = 40;

fn main() {
    // A small social-style base graph.
    let edges = graphflow_graph::generator::powerlaw_cluster(500, 4, 0.5, 42);
    let mut b = GraphBuilder::new();
    b.add_edges(edges);
    let db = GraphflowDB::from_graph(b.build());
    println!(
        "base graph: {} vertices, {} edges",
        db.snapshot().num_vertices(),
        db.snapshot().num_edges()
    );

    // Prepare once; the owned statement is Send + Sync and cheap to clone per thread.
    let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Background writer: each transaction commits one complete, brand-new triangle — the
        // three edges appear to readers atomically, so the triangle count only ever grows by
        // whole triangles.
        scope.spawn(|| {
            for t in 0..TRIANGLE_BATCHES {
                let v = 10_000 + 3 * t as VertexId;
                let mut txn = db.begin_write();
                txn.insert_edge(v, v + 1, EdgeLabel(0));
                txn.insert_edge(v + 1, v + 2, EdgeLabel(0));
                txn.insert_edge(v, v + 2, EdgeLabel(0));
                let epoch = txn.commit();
                if t % 10 == 0 {
                    println!("writer: published epoch {epoch} ({} new triangles)", t + 1);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            done.store(true, Ordering::Relaxed);
        });

        // Streaming readers: every run pins the then-current epoch; the parallel executor and
        // a streaming sink both see one consistent snapshot.
        for r in 0..READERS {
            let triangles = triangles.clone();
            let done = done.clone();
            scope.spawn(move || {
                let mut last = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let mut streamed = 0u64;
                    {
                        let mut sink = CallbackSink::new(|_t: &[u32]| {
                            streamed += 1;
                            true
                        });
                        triangles
                            .run_with_sink(QueryOptions::new(), &mut sink)
                            .unwrap();
                    }
                    assert!(streamed >= last, "triangle count only grows");
                    last = streamed;
                }
                println!("reader {r}: final streamed count {last}");
            });
        }
    });

    // After the writer finished, every committed triangle is visible to a fresh read.
    let final_count = triangles.count().unwrap();
    println!("final triangle count: {final_count}");
    let base_count = final_count - TRIANGLE_BATCHES as u64;
    println!(
        "({} from the base graph + {} committed by the writer)",
        base_count, TRIANGLE_BATCHES
    );
}
