//! Typed properties and predicate pushdown — filtered subgraph search.
//!
//! A small social/payments graph carries typed attributes (`age`, `score` on accounts,
//! `amount` on transfers). Queries filter with a `WHERE` clause; the predicates are pushed
//! into the compiled pipeline (scan / extend / hash-join build), which is visible in the
//! runtime statistics as early drops and shrunken intermediate results — and the plan cache
//! shares one optimized plan across queries that differ only in their constants.
//!
//! ```bash
//! cargo run --release --example filtered_search
//! ```

use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{GraphBuilder, PropValue};

fn main() {
    // A ring of accounts with shortcut transfers (the same shape the dynamic example uses),
    // now carrying typed attributes.
    let n = 600u32;
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
        b.add_edge(i, (i + 3) % n);
        if i % 5 == 0 {
            b.add_edge(i, (i + 2) % n);
        }
    }
    for v in 0..n {
        b.set_vertex_prop(v, "age", PropValue::Int((18 + (v * 7) % 60) as i64))
            .unwrap();
        b.set_vertex_prop(
            v,
            "score",
            PropValue::Float(((v * 13) % 100) as f64 / 100.0),
        )
        .unwrap();
    }
    let edges: Vec<_> = b.clone().build().edges().to_vec();
    for (s, d, l) in edges {
        b.set_edge_prop(
            s,
            d,
            l,
            "amount",
            PropValue::Float(((s * 31 + d) % 1000) as f64),
        )
        .unwrap();
    }
    let db = GraphflowDB::from_graph(b.build());

    let triangle = "(a)-[t1]->(b), (b)-[t2]->(c), (a)-[t3]->(c)";
    let all = db.run(triangle, QueryOptions::new()).unwrap();
    println!(
        "unfiltered: {} triangles ({} intermediate tuples)",
        all.count, all.stats.intermediate_tuples
    );

    // Filter on vertex and edge attributes; pushdown drops candidates early.
    let filtered_q =
        format!("{triangle} WHERE a.age < 25 AND a.score >= 0.5 AND t1.amount > 400.0");
    let filtered = db.run(&filtered_q, QueryOptions::new()).unwrap();
    println!(
        "filtered:   {} triangles ({} intermediate tuples, {} predicate evals, {} drops)",
        filtered.count,
        filtered.stats.intermediate_tuples,
        filtered.stats.predicate_evals,
        filtered.stats.predicate_drops
    );
    assert!(filtered.stats.intermediate_tuples <= all.stats.intermediate_tuples);
    assert!(filtered.stats.predicate_drops > 0);

    // All three executors agree on the filtered result.
    let adaptive = db
        .run(&filtered_q, QueryOptions::new().adaptive(true))
        .unwrap();
    let parallel = db.run(&filtered_q, QueryOptions::new().threads(4)).unwrap();
    assert_eq!(adaptive.count, filtered.count);
    assert_eq!(parallel.count, filtered.count);
    println!(
        "serial, adaptive and parallel executors agree: {}",
        filtered.count
    );

    // Structurally-equal queries share one plan: only the constants differ.
    let tighter = db
        .run(
            &format!("{triangle} WHERE a.age < 60 AND a.score >= 0.1 AND t1.amount > 10.0"),
            QueryOptions::new(),
        )
        .unwrap();
    let stats = db.plan_cache_stats();
    println!(
        "constants canonicalized: {} optimizer runs for {} queries ({} matches now)",
        stats.misses,
        stats.hits + stats.misses,
        tighter.count
    );

    // Properties are live: aging one matched account out of the filter changes the answer.
    let one_match = db
        .run(&filtered_q, QueryOptions::new().collect_tuples(true))
        .unwrap();
    let account = one_match.tuples[0][0];
    db.set_vertex_prop(account, "age", PropValue::Int(99))
        .unwrap();
    let after = db.run(&filtered_q, QueryOptions::new()).unwrap();
    println!(
        "after set_vertex_prop({account}, age, 99): {} matches (was {})",
        after.count, filtered.count
    );
    assert!(after.count < filtered.count);
}
