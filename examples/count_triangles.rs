//! `RETURN COUNT(*)` and the counting fast path — the canonical subgraph-analytics workload.
//!
//! Counting matches is the workload the Graphflow paper's experiments report, and the shape
//! every executor optimises hardest: a `RETURN COUNT(*)` query never materialises per-match
//! tuples. The sink reports `needs_tuples() == false`, and when the plan's final operator is
//! an E/I extension the engine adds the (already filtered) extension-set *sizes* to the count
//! in bulk — visible below as `bulk_counted_extensions` in the runtime statistics. Grouped
//! aggregates (`RETURN a, COUNT(*)`) fold streamingly with memory proportional to the number
//! of groups, and the parallel executor merges thread-local partial aggregates at its join
//! barrier.
//!
//! ```bash
//! cargo run --release --example count_triangles
//! ```

use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::generator::powerlaw_cluster;
use graphflow_graph::GraphBuilder;

fn main() {
    // A scale-free graph with heavy triangle clustering.
    let mut b = GraphBuilder::new();
    b.add_edges(powerlaw_cluster(3_000, 6, 0.5, 42));
    let db = GraphflowDB::from_graph(b.build());

    let triangle = "(a)->(b), (b)->(c), (a)->(c)";

    // --- COUNT(*): the tuple-free fast path ------------------------------------------------
    let rs = db.query(&format!("{triangle} RETURN COUNT(*)")).unwrap();
    let count = rs.scalar_count().expect("1x1 result");
    println!("triangles                      : {count}");
    println!(
        "bulk-counted extension sets    : {} (per-match tuples allocated: none)",
        rs.stats.bulk_counted_extensions
    );
    assert!(
        rs.stats.bulk_counted_extensions > 0,
        "the COUNT(*) fast path must fire on a triangle query"
    );

    // All three executors agree on the exact count.
    for (name, options) in [
        ("serial  ", QueryOptions::new()),
        ("adaptive", QueryOptions::new().adaptive(true)),
        ("parallel", QueryOptions::new().threads(4)),
    ] {
        let rs = db
            .query_with(&format!("{triangle} RETURN COUNT(*)"), options)
            .unwrap();
        println!(
            "  {name} count                : {} ({:?})",
            rs.scalar_count().unwrap(),
            rs.stats.elapsed
        );
        assert_eq!(rs.scalar_count(), Some(count));
    }

    // Queries that differ only in their RETURN clause share one cached plan.
    let stats = db.plan_cache_stats();
    println!(
        "plan cache                     : {} miss, {} hits (one plan for every RETURN)",
        stats.misses, stats.hits
    );
    assert_eq!(stats.misses, 1);

    // --- Grouped aggregation, streamed ------------------------------------------------------
    // Top-5 triangle hubs: group by the apex vertex, count per group, order, truncate.
    let rs = db
        .query_with(
            &format!("{triangle} RETURN a, COUNT(*) ORDER BY COUNT(*) DESC LIMIT 5"),
            QueryOptions::new().threads(4),
        )
        .unwrap();
    println!("top triangle hubs (vertex, triangles rooted there):");
    for row in rs.rows() {
        println!("  {:?}", row);
    }
    assert!(rs.len() <= 5);
}
