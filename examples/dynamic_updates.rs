//! Streaming updates interleaved with subgraph queries — the dynamic graph subsystem.
//!
//! A payments graph receives a stream of new transfer edges while a fraud query (a directed
//! triangle of transfers) keeps running: updates land in a delta store over the frozen CSR,
//! every query runs against an isolated snapshot, and compaction folds the deltas back into a
//! fresh CSR without changing any result.
//!
//! ```bash
//! cargo run --release --example dynamic_updates
//! ```

use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::{EdgeLabel, GraphBuilder, GraphView as _, Update};

fn main() {
    // Seed graph: a ring of accounts with a few shortcut transfers.
    let n = 400u32;
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
        if i % 7 == 0 {
            b.add_edge(i, (i + 3) % n);
        }
    }
    let db = GraphflowDB::builder(b.build())
        .staleness_threshold(64)
        .compact_threshold(1 << 16)
        .build();

    let fraud_pattern = "(a)->(b), (b)->(c), (a)->(c)";
    println!(
        "seed graph: {} accounts, {} transfers, {} fraud triangles",
        db.graph().num_vertices(),
        db.graph().num_edges(),
        db.count(fraud_pattern).unwrap()
    );

    // Stream transfer batches; each closes a few triangles by design.
    for batch_no in 0..4 {
        let base = batch_no * 40;
        let batch: Vec<Update> = (0..40)
            .map(|i| {
                let a = (base + i * 11) % n;
                Update::InsertEdge {
                    src: a,
                    dst: (a + 4) % n,
                    label: EdgeLabel(0),
                }
            })
            .collect();
        let applied = db.apply_batch(&batch);
        let result = db.run(fraud_pattern, QueryOptions::default()).unwrap();
        println!(
            "batch {batch_no}: applied {applied}/40 updates -> version {}, \
             {} triangles ({} delta-merged lists touched)",
            db.graph_version(),
            result.count,
            result.stats.delta_merges
        );
    }

    // Snapshot isolation: a handle taken now is immune to later updates.
    let frozen = db.snapshot();
    db.insert_edge(0, 200, EdgeLabel(0));
    db.delete_edge(0, 1, EdgeLabel(0));
    let live = db.snapshot();
    println!(
        "snapshot isolation: frozen snapshot sees 0->200: {}, 0->1: {}; live sees 0->200: {}, 0->1: {}",
        frozen.has_edge(0, 200, EdgeLabel(0)),
        frozen.has_edge(0, 1, EdgeLabel(0)),
        live.has_edge(0, 200, EdgeLabel(0)),
        live.has_edge(0, 1, EdgeLabel(0)),
    );
    assert!(!frozen.has_edge(0, 200, EdgeLabel(0)) && frozen.has_edge(0, 1, EdgeLabel(0)));
    assert!(live.has_edge(0, 200, EdgeLabel(0)) && !live.has_edge(0, 1, EdgeLabel(0)));

    // The plan cache re-optimizes once updates cross the staleness threshold.
    let cache = db.plan_cache_stats();
    println!(
        "plan cache: {} hits, {} misses, {} stale plans re-optimized",
        cache.hits, cache.misses, cache.invalidations
    );

    // Compaction folds the deltas into a fresh CSR; results are untouched.
    let before = db.count(fraud_pattern).unwrap();
    let pending = db.snapshot().delta().overlay_edges();
    db.compact();
    let after = db.count(fraud_pattern).unwrap();
    println!(
        "compaction: folded {pending} pending updates into the CSR \
         ({before} triangles before, {after} after)"
    );
    assert_eq!(before, after);
    assert!(!db.snapshot().has_pending_deltas());
}
