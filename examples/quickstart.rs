//! Quickstart: build a graph, prepare queries, stream results.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use graphflow_core::{CallbackSink, GraphflowDB, QueryOptions};
use graphflow_graph::GraphBuilder;

fn main() {
    // A small collaboration graph: cliques of co-authors plus a few cross-team edges.
    let mut b = GraphBuilder::new();
    let teams: &[&[u32]] = &[&[0, 1, 2, 3], &[4, 5, 6], &[7, 8, 9, 10]];
    for team in teams {
        for &u in *team {
            for &v in *team {
                if u < v {
                    b.add_edge(u, v);
                    b.add_edge(v, u);
                }
            }
        }
    }
    for &(u, v) in &[(3, 4), (6, 7), (2, 8), (1, 9)] {
        b.add_edge(u, v);
    }
    let db = GraphflowDB::from_graph(b.build());

    println!(
        "graph: {} vertices, {} directed edges\n",
        db.graph().num_vertices(),
        db.graph().num_edges()
    );

    // 1. Prepare queries once: parse -> canonicalize -> optimize happens here, not per run.
    let triangle = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
    let diamond = db
        .prepare("(a)->(b), (a)->(c), (b)->(c), (b)->(d), (c)->(d)")
        .unwrap();
    println!("asymmetric triangles : {}", triangle.count().unwrap());
    println!("diamond-X instances  : {}", diamond.count().unwrap());

    // An isomorphic rewriting of the triangle is a plan-cache hit — the optimizer is skipped.
    let rewritten = db.prepare("(x)->(y), (y)->(z), (x)->(z)").unwrap();
    assert!(rewritten.was_cached());
    let cache = db.plan_cache_stats();
    println!(
        "plan cache           : {} hits, {} misses (optimizer invocations)",
        cache.hits, cache.misses
    );

    // 2. Inspect the plan the cost-based optimizer picked (SCAN / EXTEND-INTERSECT / HASH-JOIN).
    println!("\nEXPLAIN diamond-X\n{}", diamond.explain());

    // 3. Run with statistics: actual i-cost, intermediate matches and cache hits, exactly the
    //    quantities the paper's Tables 3-6 report. Tuples are collected via a bounded sink.
    let result = diamond
        .run(QueryOptions::new().collect_tuples(true).collect_limit(3))
        .unwrap();
    println!("matches              : {}", result.count);
    println!("actual i-cost        : {}", result.stats.icost);
    println!(
        "intermediate matches : {}",
        result.stats.intermediate_tuples
    );
    println!(
        "cache hit rate       : {:.2}",
        result.stats.cache_hit_rate()
    );
    println!("sample matches       : {:?}", result.tuples);

    // 4. Stream matches through a callback sink instead of materialising them: constant
    //    memory no matter how many matches there are.
    let mut anchor_of_first = None;
    let (streamed, stats) = {
        let mut sink = CallbackSink::new(|t: &[u32]| {
            anchor_of_first.get_or_insert(t[0]);
            true
        });
        let stats = diamond
            .run_with_sink(QueryOptions::new(), &mut sink)
            .unwrap();
        (sink.matches, stats)
    };
    println!(
        "\nstreamed {streamed} diamonds without materialising them (first anchored at user {:?})",
        anchor_of_first.unwrap()
    );
    assert_eq!(streamed, stats.output_count);

    // 5. The same prepared query, evaluated adaptively and in parallel — same counts,
    //    different engines.
    let adaptive = diamond.run(QueryOptions::new().adaptive(true)).unwrap();
    let parallel = diamond.run(QueryOptions::new().threads(4)).unwrap();
    println!(
        "adaptive count = {}, parallel count = {}",
        adaptive.count, parallel.count
    );
    assert_eq!(adaptive.count, result.count);
    assert_eq!(parallel.count, result.count);
}
