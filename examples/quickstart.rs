//! Quickstart: build a graph, ask for a plan, run a few patterns.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use graphflow_core::{GraphflowDB, QueryOptions};
use graphflow_graph::GraphBuilder;

fn main() {
    // A small collaboration graph: cliques of co-authors plus a few cross-team edges.
    let mut b = GraphBuilder::new();
    let teams: &[&[u32]] = &[&[0, 1, 2, 3], &[4, 5, 6], &[7, 8, 9, 10]];
    for team in teams {
        for &u in *team {
            for &v in *team {
                if u < v {
                    b.add_edge(u, v);
                    b.add_edge(v, u);
                }
            }
        }
    }
    for &(u, v) in &[(3, 4), (6, 7), (2, 8), (1, 9)] {
        b.add_edge(u, v);
    }
    let db = GraphflowDB::from_graph(b.build());

    println!(
        "graph: {} vertices, {} directed edges\n",
        db.graph().num_vertices(),
        db.graph().num_edges()
    );

    // 1. Count simple patterns.
    let triangle = "(a)->(b), (b)->(c), (a)->(c)";
    println!("asymmetric triangles : {}", db.count(triangle).unwrap());
    let diamond = "(a)->(b), (a)->(c), (b)->(c), (b)->(d), (c)->(d)";
    println!("diamond-X instances  : {}", db.count(diamond).unwrap());

    // 2. Inspect the plan the cost-based optimizer picked (SCAN / EXTEND-INTERSECT / HASH-JOIN).
    println!("\nEXPLAIN {diamond}\n{}", db.explain(diamond).unwrap());

    // 3. Run with statistics: actual i-cost, intermediate matches and cache hits, exactly the
    //    quantities the paper's Tables 3-6 report.
    let result = db
        .run(
            diamond,
            QueryOptions {
                collect_tuples: true,
                collect_limit: 3,
                ..Default::default()
            },
        )
        .unwrap();
    println!("matches              : {}", result.count);
    println!("actual i-cost        : {}", result.stats.icost);
    println!("intermediate matches : {}", result.stats.intermediate_tuples);
    println!("cache hit rate       : {:.2}", result.stats.cache_hit_rate());
    println!("sample matches       : {:?}", result.tuples);

    // 4. The same query, evaluated adaptively and in parallel — same counts, different engines.
    let adaptive = db
        .run(
            diamond,
            QueryOptions {
                adaptive: true,
                ..Default::default()
            },
        )
        .unwrap();
    let parallel = db
        .run(
            diamond,
            QueryOptions {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
    println!(
        "\nadaptive count = {}, parallel count = {}",
        adaptive.count, parallel.count
    );
    assert_eq!(adaptive.count, result.count);
    assert_eq!(parallel.count, result.count);
}
