//! `graphflow-serve` — serve a Graphflow database over HTTP.
//!
//! ```text
//! graphflow-serve [--data-dir DIR] [--port N] [--addr HOST] [--threads N]
//!                 [--durability none|buffered|fsync] [--max-inflight N] [--queue-cap N]
//!                 [--query-quota N] [--row-quota N] [--timeout-ms N]
//!                 [--slow-queries] [--enable-shutdown] [--demo-vertices N]
//! ```
//!
//! With `--data-dir` the directory is opened (creating and seeding it if fresh) with the
//! requested durability; without one, an in-memory demo graph of `--demo-vertices` vertices
//! (a ring with chords, so triangle queries match) is served. `--enable-shutdown` accepts
//! `POST /shutdown` for a graceful supervised stop — the process stops accepting, cancels
//! in-flight queries, drains workers and fsyncs the WAL before exiting.

use graphflow_rs::graph::GraphBuilder;
use graphflow_rs::{Durability, GraphflowDB, Server, ServerConfig, TenantConfig};
use std::time::Duration;

struct Args {
    data_dir: Option<String>,
    addr: String,
    port: u16,
    threads: usize,
    durability: Durability,
    max_inflight: usize,
    queue_cap: usize,
    query_quota: Option<u64>,
    row_quota: Option<u64>,
    timeout_ms: u64,
    slow_queries: bool,
    enable_shutdown: bool,
    demo_vertices: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: graphflow-serve [--data-dir DIR] [--port N] [--addr HOST] [--threads N]\n\
         \x20                      [--durability none|buffered|fsync] [--max-inflight N]\n\
         \x20                      [--queue-cap N] [--query-quota N] [--row-quota N]\n\
         \x20                      [--timeout-ms N] [--slow-queries] [--enable-shutdown]\n\
         \x20                      [--demo-vertices N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        data_dir: None,
        addr: "127.0.0.1".to_string(),
        port: 7687,
        threads: 4,
        durability: Durability::Fsync,
        max_inflight: 8,
        queue_cap: 16,
        query_quota: None,
        row_quota: None,
        timeout_ms: 30_000,
        slow_queries: false,
        enable_shutdown: false,
        demo_vertices: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("missing value for {name}");
                    usage();
                }
            }
        };
        match flag.as_str() {
            "--data-dir" => args.data_dir = Some(value("--data-dir")),
            "--addr" => args.addr = value("--addr"),
            "--port" => args.port = value("--port").parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--durability" => {
                args.durability = match value("--durability").as_str() {
                    "none" => Durability::None,
                    "buffered" => Durability::Buffered,
                    "fsync" => Durability::Fsync,
                    other => {
                        eprintln!("unknown durability {other:?}");
                        usage();
                    }
                }
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight").parse().unwrap_or_else(|_| usage())
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| usage())
            }
            "--query-quota" => {
                args.query_quota = Some(value("--query-quota").parse().unwrap_or_else(|_| usage()))
            }
            "--row-quota" => {
                args.row_quota = Some(value("--row-quota").parse().unwrap_or_else(|_| usage()))
            }
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--demo-vertices" => {
                args.demo_vertices = value("--demo-vertices").parse().unwrap_or_else(|_| usage())
            }
            "--slow-queries" => args.slow_queries = true,
            "--enable-shutdown" => args.enable_shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

/// A ring with chords: edges `i -> i+1` and `i -> i+2` (mod n), so paths, triangles and
/// property-free patterns all have matches out of the box.
fn demo_graph(n: u32) -> graphflow_rs::graph::Graph {
    let n = n.max(4);
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
        b.add_edge(i, (i + 2) % n);
    }
    b.build()
}

fn main() {
    let args = parse_args();
    let db = match &args.data_dir {
        Some(dir) => {
            match GraphflowDB::builder(demo_graph(args.demo_vertices))
                .data_dir(dir)
                .durability(args.durability)
                .open()
            {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("failed to open {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => GraphflowDB::from_graph(demo_graph(args.demo_vertices)),
    };
    let config = ServerConfig {
        addr: format!("{}:{}", args.addr, args.port),
        workers: args.threads.max(1),
        tenant: TenantConfig {
            max_inflight: args.max_inflight.max(1),
            queue_cap: args.queue_cap,
            query_quota: args.query_quota,
            row_quota: args.row_quota,
            ..TenantConfig::default()
        },
        default_timeout: Some(Duration::from_millis(args.timeout_ms.max(1))),
        expose_slow_queries: args.slow_queries,
        allow_remote_shutdown: args.enable_shutdown,
        ..ServerConfig::default()
    };
    let server = match Server::start(db, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    };
    // The smoke tests parse this line to learn the ephemeral port; keep its shape stable.
    println!(
        "graphflow-serve listening on http://{}",
        server.local_addr()
    );
    if args.enable_shutdown {
        server.wait_for_shutdown_request();
        println!("shutdown requested, draining");
        match server.shutdown() {
            Ok(()) => println!("shutdown complete"),
            Err(e) => {
                eprintln!("shutdown error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        // No remote shutdown: serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
