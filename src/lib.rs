//! # graphflow-rs
//!
//! Umbrella crate for **Graphflow-RS**, a from-scratch Rust reproduction of
//! *"Optimizing Subgraph Queries by Combining Binary and Worst-Case Optimal Joins"*
//! (Mhedhbi & Salihoglu, VLDB 2019).
//!
//! Most users only need the facade: build a [`GraphflowDB`], then
//! [`prepare`](GraphflowDB::prepare) patterns once and rerun them — planning is amortized
//! through an LRU plan cache keyed on the canonical query form — or stream unbounded result
//! sets through a [`MatchSink`]:
//!
//! ```
//! use graphflow_rs::{GraphflowDB, QueryOptions};
//! use graphflow_rs::graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! let db = GraphflowDB::from_graph(b.build());
//!
//! let triangles = db.prepare("(a)->(b), (b)->(c), (a)->(c)").unwrap();
//! assert_eq!(triangles.count().unwrap(), 1);
//! // Rerun with different options — parse/canonicalize/optimize are not repeated.
//! let parallel = triangles.run(QueryOptions::new().threads(2)).unwrap();
//! assert_eq!(parallel.count, 1);
//! // RETURN clauses compile into streaming aggregation sinks over the same plan.
//! let counted = db.query("(a)->(b), (b)->(c), (a)->(c) RETURN COUNT(*)").unwrap();
//! assert_eq!(counted.scalar_count(), Some(1));
//! ```
//!
//! The graph is **dynamic** and the database is **concurrent**: [`GraphflowDB`] is a cheap
//! `Clone`-able, `Send + Sync` handle, writes go through [`WriteTxn`]s
//! (`GraphflowDB::begin_write` — the single-call `insert_edge` / `delete_edge` /
//! [`apply_batch`](GraphflowDB::apply_batch) wrappers are one-update transactions) that
//! publish one snapshot epoch atomically, queries run against isolated
//! [`Snapshot`](graph::Snapshot)s — writers never block readers — and compaction folds deltas
//! back into a fresh CSR:
//!
//! ```
//! use graphflow_rs::GraphflowDB;
//! use graphflow_rs::graph::{EdgeLabel, GraphBuilder};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! let db = GraphflowDB::from_graph(b.build());
//! assert!(db.insert_edge(0, 2, EdgeLabel(0))); // close the triangle (a 1-update WriteTxn)
//! assert_eq!(db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap(), 1);
//!
//! // Share the handle across threads; long queries can carry deadlines or be cancelled.
//! let worker = std::thread::spawn({
//!     let db = db.clone();
//!     move || db.count("(a)->(b), (b)->(c), (a)->(c)").unwrap()
//! });
//! assert_eq!(worker.join().unwrap(), 1);
//! ```
//!
//! The workspace's substrate layers are re-exported under one roof:
//!
//! * [`graph`] — storage (label-partitioned sorted adjacency lists), generators, loaders;
//! * [`query`] — query graphs, the pattern parser, the benchmark queries of the paper;
//! * [`catalog`] — the sampling-based subgraph catalogue (cardinality / i-cost estimation);
//! * [`plan`] — plan trees, the i-cost cost model, the DP optimizer, the GHD baseline planner;
//! * [`exec`] — the execution engine (streaming sinks, intersection cache, adaptive QVO
//!   selection, parallelism);
//! * [`baselines`] — the naive binary-join engine and the CFL-style backtracking matcher;
//! * [`datasets`] — synthetic stand-ins for the paper's datasets;
//! * [`storage`] — the durability subsystem (write-ahead log, binary snapshots, crash
//!   recovery, fault injection for tests);
//! * [`core`] — the [`GraphflowDB`] facade (prepared queries,
//!   plan cache, builder-style options, unified [`Error`]);
//! * [`server`] — the HTTP network front-end ([`Server`]): multi-tenant sessions, admission
//!   control, streaming chunked results, served by the `graphflow-serve` binary.
//!
//! Databases can also be **persistent**: open one over a data directory and every committed
//! write transaction is write-ahead logged before it is published, compactions double as
//! binary-snapshot checkpoints, and reopening the directory recovers the last durably
//! committed epoch — including after a crash mid-write:
//!
//! ```no_run
//! use graphflow_rs::{Durability, GraphflowDB};
//! use graphflow_rs::graph::EdgeLabel;
//!
//! let db = GraphflowDB::open("./mydb")?;       // creates ./mydb, or recovers it
//! db.insert_edge(0, 1, EdgeLabel(0));          // WAL-logged (fsync'd) before it returns
//! db.checkpoint()?;                            // snapshot the CSR, truncate the WAL
//! drop(db);
//! let db = GraphflowDB::open("./mydb")?;       // instant recovery from the snapshot
//! assert_eq!(db.count("(a)->(b)")?, 1);
//! # Ok::<(), graphflow_rs::Error>(())
//! ```

pub use graphflow_baselines as baselines;
pub use graphflow_catalog as catalog;
pub use graphflow_core as core;
pub use graphflow_core::{
    CallbackSink, CancellationToken, CollectingSink, CountingSink, Durability, Error, GraphflowDB,
    LimitSink, MatchSink, PlanCacheStats, PreparedQuery, QueryHandle, QueryOptions, QueryResult,
    ResultSet, WriteTxn,
};
pub use graphflow_datasets as datasets;
pub use graphflow_exec as exec;
pub use graphflow_graph as graph;
pub use graphflow_plan as plan;
pub use graphflow_query as query;
pub use graphflow_server as server;
pub use graphflow_server::{Server, ServerConfig, TenantConfig};
pub use graphflow_storage as storage;
