//! # graphflow-rs
//!
//! Umbrella crate for **Graphflow-RS**, a from-scratch Rust reproduction of
//! *"Optimizing Subgraph Queries by Combining Binary and Worst-Case Optimal Joins"*
//! (Mhedhbi & Salihoglu, VLDB 2019).
//!
//! This crate simply re-exports the workspace's components under one roof; most users only need
//! [`GraphflowDB`](graphflow_core::GraphflowDB). See the individual crates for the substrate
//! layers:
//!
//! * [`graph`] — storage (label-partitioned sorted adjacency lists), generators, loaders;
//! * [`query`] — query graphs, the pattern parser, the benchmark queries of the paper;
//! * [`catalog`] — the sampling-based subgraph catalogue (cardinality / i-cost estimation);
//! * [`plan`] — plan trees, the i-cost cost model, the DP optimizer, the GHD baseline planner;
//! * [`exec`] — the execution engine (intersection cache, adaptive QVO selection, parallelism);
//! * [`baselines`] — the naive binary-join engine and the CFL-style backtracking matcher;
//! * [`datasets`] — synthetic stand-ins for the paper's datasets;
//! * [`core`] — the [`GraphflowDB`](graphflow_core::GraphflowDB) facade.

pub use graphflow_baselines as baselines;
pub use graphflow_catalog as catalog;
pub use graphflow_core as core;
pub use graphflow_core::{GraphflowDB, QueryOptions, QueryResult};
pub use graphflow_datasets as datasets;
pub use graphflow_exec as exec;
pub use graphflow_graph as graph;
pub use graphflow_plan as plan;
pub use graphflow_query as query;
